//! The Acamar accelerator top level (paper Fig. 3).

use crate::config::AcamarConfig;
use crate::fine_grained::{FineGrainedPlan, FineGrainedReconfigUnit};
use crate::solver_modifier::SolverModifier;
use crate::structure_unit::{MatrixStructureUnit, StructureDecision};
use acamar_fabric::{cost, FabricKernels, FabricRunStats, FabricSpec, HwRun, ResourceVector};
use acamar_faultline::FaultContext;
use acamar_solvers::{
    ic0_preconditioned_cg, solve_with, ConvergenceCriteria, Outcome, SolveReport, SolverKind,
    WorkspaceHandle,
};
use acamar_sparse::{
    CompiledSpmv, CompiledSptrsv, CsrMatrix, DeterminismPolicy, Scalar, SparseError,
};
use acamar_telemetry::{EventKind, TelemetrySink};
use std::sync::Arc;

/// The cacheable product of Acamar's two host-side decision loops: the
/// Matrix Structure unit's solver pick and the Fine-Grained
/// Reconfiguration unit's unroll plan (with its MSID schedule).
///
/// Both depend only on the coefficient matrix — not on the right-hand
/// side — so callers solving many systems against the same matrix (or
/// the same sparsity pattern) can run [`Acamar::analyze`] once and replay
/// the artifacts through [`Acamar::run_with_plan`], amortizing the
/// reconfiguration-decision overhead across solves. The `acamar-engine`
/// crate builds its fingerprint cache on exactly this type.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisArtifacts {
    /// The Matrix Structure unit's analysis and initial recommendation.
    pub structure: StructureDecision,
    /// The Fine-Grained Reconfiguration unit's plan.
    pub plan: FineGrainedPlan,
    /// The host SpMV execution plan compiled from the MSID schedule
    /// ([`CompiledSpmv`]): format-specialized row bands, bitwise identical
    /// to the generic CSR walk. Pattern-only — safe to share across
    /// matrices with the same sparsity pattern but different values —
    /// and behind an `Arc` so replaying it per solve costs nothing.
    pub compiled: Arc<CompiledSpmv>,
    /// Level-scheduled triangular-solve plans (lower, upper) over `a`'s
    /// own triangle patterns, built only for symmetric matrices: the
    /// IC(0) factor's pattern is exactly `tril(A)`, so these plans replay
    /// for preconditioned-CG runs without recompiling the level schedule
    /// per solve. Pattern-only and `Arc`-shared like `compiled`; `None`
    /// for nonsymmetric matrices or a structurally missing diagonal.
    pub sptrsv: Option<Arc<(CompiledSptrsv, CompiledSptrsv)>>,
    /// Estimated host-side work of building these artifacts, in
    /// row/entry traversals: the structure unit's CSR→CSC symmetry
    /// compare and dominance scan are each O(nnz), the Row Length Trace
    /// is O(rows), and the SpMV plan compile is one more O(nnz) pass —
    /// this is what a cache hit saves.
    pub build_cost: u64,
}

impl AnalysisArtifacts {
    /// Cost model for building the artifacts of an `nrows` x `nnz` matrix
    /// (see the field docs on `build_cost`).
    pub fn cost_model(nrows: usize, nnz: usize) -> u64 {
        3 * nnz as u64 + 2 * nrows as u64
    }

    /// Relative residual `‖b − A·x‖₂ / ‖b‖₂` of a warm-start candidate
    /// `x`, computed through the compiled plan's deterministic SpMV and a
    /// fixed-order `f64` accumulation — two replays of the same sequence
    /// gate identically, which is what lets a warm-start rejection fall
    /// back to a cold start without breaking the bitwise replay contract.
    ///
    /// A zero `b` falls back to the absolute residual norm (an exact
    /// solution still gates in); a non-finite residual reports `+∞` so
    /// any threshold rejects it.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape mismatches between `a`, `b`, `x`,
    /// and the compiled plan.
    pub fn warm_start_residual<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x: &[T],
    ) -> Result<f64, SparseError> {
        if b.len() != a.nrows() {
            return Err(SparseError::DimensionMismatch {
                expected: a.nrows(),
                found: b.len(),
                what: "warm-start rhs length",
            });
        }
        let mut ax = vec![T::ZERO; a.nrows()];
        self.compiled.execute(a, x, &mut ax)?;
        let mut rr = 0.0f64;
        let mut bb = 0.0f64;
        for (bi, axi) in b.iter().zip(&ax) {
            let bf = bi.to_f64();
            let r = bf - axi.to_f64();
            rr += r * r;
            bb += bf * bf;
        }
        if !rr.is_finite() {
            return Ok(f64::INFINITY);
        }
        let denom = bb.sqrt();
        Ok(if denom > 0.0 {
            rr.sqrt() / denom
        } else {
            rr.sqrt()
        })
    }
}

/// One solver attempt inside an Acamar run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// Solver the Reconfigurable Solver unit was configured with.
    pub solver: SolverKind,
    /// Its terminal outcome.
    pub outcome: Outcome,
    /// Loop iterations it performed.
    pub iterations: usize,
}

/// Full report of one Acamar run.
#[derive(Debug, Clone)]
pub struct AcamarRunReport<T> {
    /// The Matrix Structure unit's analysis and initial recommendation.
    pub structure: StructureDecision,
    /// The Fine-Grained Reconfiguration unit's plan (tBuffer, schedule,
    /// MSID effect).
    pub plan: FineGrainedPlan,
    /// Every solver attempt, in order (length > 1 means the Solver
    /// Modifier intervened).
    pub attempts: Vec<SolveAttempt>,
    /// The numerical report of the final attempt.
    pub solve: SolveReport<T>,
    /// Hardware statistics accumulated across *all* attempts.
    pub stats: FabricRunStats,
    /// Kernel clock for time conversion.
    pub clock_mhz: f64,
}

impl<T> AcamarRunReport<T> {
    /// `true` if the run converged (possibly after solver switches).
    pub fn converged(&self) -> bool {
        self.solve.outcome.converged()
    }

    /// The solver that produced the final outcome.
    pub fn final_solver(&self) -> SolverKind {
        self.solve.solver
    }

    /// Number of Solver Decision loop reconfigurations (solver swaps
    /// beyond the initial configuration).
    pub fn solver_switches(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Converts to the common hardware-run view used by the experiment
    /// harnesses (consumes the report).
    pub fn into_hw_run(self) -> HwRun<T> {
        HwRun {
            solve: self.solve,
            stats: self.stats,
            clock_mhz: self.clock_mhz,
        }
    }

    /// Wall-clock seconds of compute (the paper's latency metric).
    pub fn compute_seconds(&self) -> f64 {
        self.stats.cycles.compute() as f64 / (self.clock_mhz * 1e6)
    }

    /// Wall-clock seconds including reconfiguration.
    pub fn total_seconds(&self) -> f64 {
        self.stats.cycles.total() as f64 / (self.clock_mhz * 1e6)
    }
}

/// Per-run overrides for [`Acamar::run_with_plan_opts`].
///
/// The default (`RunOptions::default()`) reproduces
/// [`Acamar::run_with_plan`] exactly; the batch engine's rescue ladder
/// and fault-injection harness are the intended users of the overrides.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Convergence criteria replacing the configuration's (rescue rungs
    /// shrink the iteration budget per step).
    pub criteria: Option<ConvergenceCriteria>,
    /// Force this single solver, bypassing the Matrix Structure pick, the
    /// Solver Modifier loop, and the GMRES fallback (used by rescue rungs
    /// that escalate to a specific solver).
    pub solver: Option<SolverKind>,
    /// Fault-injection context threaded down to the fabric kernels.
    pub fault: Option<FaultContext>,
    /// Host-side buffer pool threaded down to the fabric kernels so solver
    /// scratch vectors are recycled across runs (engine workers install
    /// their per-thread pool here). Purely a host optimization: cycle and
    /// FLOP accounting are unchanged.
    pub workspace: Option<WorkspaceHandle>,
    /// Structured telemetry sink threaded down to the fabric kernels
    /// (reconfiguration events, per-set SpMV segments, sampled residuals).
    /// The default disabled sink keeps the run observation-free; any sink
    /// is purely observational — numerics and cycle charges are unchanged.
    pub telemetry: TelemetrySink,
    /// Determinism tier for host arithmetic (see [`DeterminismPolicy`]).
    /// The default `Deterministic` preserves the bitwise replay contract;
    /// `Fast` runs plan-backed SpMV and dense reductions through the
    /// 4-lane reassociated kernels. Cycle and FLOP charges are identical
    /// on both tiers.
    pub policy: DeterminismPolicy,
}

/// The dynamically reconfigurable accelerator.
///
/// # Examples
///
/// ```
/// use acamar_core::{Acamar, AcamarConfig};
/// use acamar_fabric::FabricSpec;
/// use acamar_sparse::generate;
///
/// let a = generate::poisson2d::<f32>(16, 16);
/// let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
/// let report = acamar.run(&a, &vec![1.0; 256])?;
/// assert!(report.converged());
/// // The stencil has ~5 NNZ/row, so the engine stays well utilized:
/// assert!(report.stats.spmv.underutilization() < 0.3);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Acamar {
    spec: FabricSpec,
    config: AcamarConfig,
}

impl Acamar {
    /// Creates an accelerator on `spec` with `config`.
    pub fn new(spec: FabricSpec, config: AcamarConfig) -> Self {
        Acamar { spec, config }
    }

    /// The device specification.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The configuration.
    pub fn config(&self) -> &AcamarConfig {
        &self.config
    }

    /// Resource vector of one solver configuration bitstream (control,
    /// dense units, and a DFX region sized for `max_unroll` lanes).
    fn solver_module(&self, max_unroll: usize) -> ResourceVector {
        cost::solver_control_unit() + cost::dense_vector_unit() + cost::spmv_engine(max_unroll)
    }

    /// Solves `A x = b`, reconfiguring solvers until convergence or until
    /// all three solvers have been tried (paper Fig. 3: Solver Decision
    /// loop around the Resource Decision loop).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems. Robust-convergence
    /// failure (all three solvers diverging) is reported through the
    /// final attempt's `outcome`, not an error.
    pub fn run<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
    ) -> Result<AcamarRunReport<T>, SparseError> {
        self.run_with_guess(a, b, None)
    }

    /// Like [`Acamar::run`] but starting from the initial guess `x0`
    /// (warm start; each solver attempt restarts from it, mirroring the
    /// Solver Modifier triggering the Initialize unit to "reset and
    /// resend the values").
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems.
    pub fn run_with_guess<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<AcamarRunReport<T>, SparseError> {
        let artifacts = self.analyze(a);
        self.run_with_plan(a, b, x0, &artifacts)
    }

    /// Runs both host-side decision loops — the Matrix Structure unit and
    /// the Fine-Grained Reconfiguration unit (with its MSID chain) —
    /// without solving anything, returning the cacheable artifacts.
    ///
    /// The artifacts depend only on `a`; pair with
    /// [`Acamar::run_with_plan`] to amortize this analysis across many
    /// right-hand sides or many solves sharing a sparsity pattern.
    pub fn analyze<T: Scalar>(&self, a: &CsrMatrix<T>) -> AnalysisArtifacts {
        // The Matrix Structure, Fine-Grained Reconfiguration, and
        // Initialize units "have no dependencies and run concurrently"
        // (paper §IV); their latency is host-side and overlapped, so only
        // fabric work is charged cycles.
        let unit = MatrixStructureUnit::new();
        let structure = if self.config.extended_solvers {
            unit.analyze_extended(a)
        } else {
            unit.analyze(a)
        };
        let plan = FineGrainedReconfigUnit::new(self.config.clone()).plan(a);
        let compiled = Arc::new(
            CompiledSpmv::compile(a, &plan.schedule.band_hints())
                .expect("MSID schedules always tile the matrix rows"),
        );
        // Symmetric matrices get triangular-solve schedules alongside the
        // SpMV plan: the IC(0) preconditioner's substitution passes run
        // over exactly tril(A)/triu(A), so the level analysis is shareable
        // across every same-pattern solve. A structurally missing diagonal
        // (compile error) simply leaves the preconditioner to compile its
        // own plans if it is ever forced.
        let sptrsv = if structure.report.symmetric {
            CompiledSptrsv::compile_lower(a)
                .ok()
                .zip(CompiledSptrsv::compile_upper(a).ok())
                .map(Arc::new)
        } else {
            None
        };
        AnalysisArtifacts {
            structure,
            plan,
            compiled,
            sptrsv,
            build_cost: AnalysisArtifacts::cost_model(a.nrows(), a.nnz()),
        }
    }

    /// Like [`Acamar::run_with_guess`], but replaying previously built
    /// [`AnalysisArtifacts`] instead of re-running the decision loops —
    /// the cache-hit fast path of the batch engine.
    ///
    /// The caller asserts the artifacts were built for a matrix with
    /// `a`'s sparsity pattern (the unroll schedule must tile `a`'s rows);
    /// a mismatched row count is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems, including artifacts
    /// whose schedule does not cover `a`'s rows.
    pub fn run_with_plan<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
        artifacts: &AnalysisArtifacts,
    ) -> Result<AcamarRunReport<T>, SparseError> {
        self.run_with_plan_opts(a, b, x0, artifacts, RunOptions::default())
    }

    /// Rejects non-finite values and shape mismatches before any fabric
    /// work is charged: garbage inputs must fail typed, not propagate.
    fn validate_inputs<T: Scalar>(
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<(), SparseError> {
        if b.len() != a.nrows() {
            return Err(SparseError::DimensionMismatch {
                expected: a.nrows(),
                found: b.len(),
                what: "right-hand side length",
            });
        }
        if let Some(index) = b.iter().position(|v| !v.is_finite()) {
            return Err(SparseError::NonFiniteValue {
                what: "right-hand side",
                index,
            });
        }
        if let Some(x0) = x0 {
            if x0.len() != a.nrows() {
                return Err(SparseError::DimensionMismatch {
                    expected: a.nrows(),
                    found: x0.len(),
                    what: "initial guess length",
                });
            }
            if let Some(index) = x0.iter().position(|v| !v.is_finite()) {
                return Err(SparseError::NonFiniteValue {
                    what: "initial guess",
                    index,
                });
            }
        }
        Ok(())
    }

    /// [`Acamar::run_with_plan`] with per-run overrides: replacement
    /// convergence criteria, a forced single solver, and a
    /// fault-injection context (see [`RunOptions`]). With default options
    /// the behavior — down to every charged cycle — is identical to
    /// [`Acamar::run_with_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems, non-finite inputs
    /// ([`SparseError::NonFiniteValue`]), and artifacts whose schedule
    /// does not cover `a`'s rows.
    pub fn run_with_plan_opts<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
        artifacts: &AnalysisArtifacts,
        opts: RunOptions,
    ) -> Result<AcamarRunReport<T>, SparseError> {
        Self::validate_inputs(a, b, x0)?;
        let structure = artifacts.structure.clone();
        let plan = artifacts.plan.clone();
        let planned_rows = plan.schedule.entries().last().map_or(0, |e| e.rows.end);
        if planned_rows != a.nrows() {
            return Err(SparseError::DimensionMismatch {
                expected: a.nrows(),
                found: planned_rows,
                what: "planned schedule rows",
            });
        }

        let criteria = opts.criteria.unwrap_or(self.config.criteria);
        let mut hw = FabricKernels::new(
            self.spec.clone(),
            plan.schedule.clone(),
            self.config.init_unroll,
        )
        .with_overlap(self.config.overlap_reconfiguration)
        .with_compiled_plan(Arc::clone(&artifacts.compiled))
        .with_policy(opts.policy);
        if let Some(ctx) = opts.fault {
            hw = hw.with_fault_context(ctx);
        }
        if let Some(ws) = opts.workspace {
            hw = hw.with_workspace(ws);
        }
        let telemetry = opts.telemetry.clone();
        if opts.telemetry.enabled() {
            hw = hw.with_telemetry(opts.telemetry);
        }
        let mut attempts = Vec::new();
        let module = self.solver_module(plan.schedule.max_unroll());

        let mut last: Option<SolveReport<T>> = None;
        if let Some(kind) = opts.solver {
            // Rescue-rung mode: one configured solver, no modifier loop.
            hw.charge_solver_reconfig(&module);
            hw.set_schedule(plan.schedule.clone());
            let report = if kind == SolverKind::Gmres {
                acamar_solvers::gmres(
                    a,
                    b,
                    x0,
                    self.config.gmres_restart.max(1),
                    &criteria,
                    &mut hw,
                )?
            } else if kind == SolverKind::PreconditionedCg {
                // Forced PCG replays the cached triangular plans when the
                // analysis built them (symmetric pattern): IC(0)'s factor
                // shares tril(A)'s pattern, so the level schedules are
                // interchangeable. Without plans (or on an indefinite
                // pivot) the solver degrades to Jacobi preconditioning.
                let plans = artifacts.sptrsv.as_deref().map(|(l, u)| (l, u));
                telemetry.emit(EventKind::PreconditionerSelected {
                    ic0: plans.is_some(),
                    levels: plans.map_or(0, |(l, _)| l.level_count() as u32),
                });
                ic0_preconditioned_cg(a, b, x0, &criteria, &mut hw, plans)?
            } else {
                solve_with(kind, a, b, x0, &criteria, &mut hw)?
            };
            attempts.push(SolveAttempt {
                solver: kind,
                outcome: report.outcome,
                iterations: report.iterations,
            });
            last = Some(report);
        } else {
            let mut modifier = if self.config.extended_solvers {
                SolverModifier::extended(structure.solver)
            } else {
                SolverModifier::new(structure.solver)
            };
            while let Some(kind) = modifier.next_solver() {
                // Host configures the Reconfigurable Solver region.
                hw.charge_solver_reconfig(&module);
                hw.set_schedule(plan.schedule.clone());
                let report = solve_with(kind, a, b, x0, &criteria, &mut hw)?;
                attempts.push(SolveAttempt {
                    solver: kind,
                    outcome: report.outcome,
                    iterations: report.iterations,
                });
                let done = report.outcome.converged();
                last = Some(report);
                if done {
                    break;
                }
            }

            // Extension: last-resort GMRES after all three solvers failed.
            if self.config.gmres_fallback
                && !last
                    .as_ref()
                    .map(|r| r.outcome.converged())
                    .unwrap_or(false)
            {
                hw.charge_solver_reconfig(&module);
                hw.set_schedule(plan.schedule.clone());
                let report = acamar_solvers::gmres(
                    a,
                    b,
                    x0,
                    self.config.gmres_restart.max(1),
                    &criteria,
                    &mut hw,
                )?;
                attempts.push(SolveAttempt {
                    solver: SolverKind::Gmres,
                    outcome: report.outcome,
                    iterations: report.iterations,
                });
                last = Some(report);
            }
        }

        let solve = last.expect("at least one attempt always runs");
        Ok(AcamarRunReport {
            structure,
            plan,
            attempts,
            solve,
            stats: hw.finish(),
            clock_mhz: self.spec.clock_mhz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_solvers::ConvergenceCriteria;
    use acamar_sparse::generate::{self, RowDistribution};

    fn acamar() -> Acamar {
        let cfg = AcamarConfig::paper()
            .with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
        Acamar::new(FabricSpec::alveo_u55c(), cfg)
    }

    #[test]
    fn converges_first_try_on_dominant_matrix() {
        let a = generate::diagonally_dominant::<f32>(
            200,
            RowDistribution::Uniform { min: 2, max: 10 },
            1.5,
            3,
        );
        let b = vec![1.0_f32; 200];
        let rep = acamar().run(&a, &b).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.attempts.len(), 1);
        assert_eq!(rep.final_solver(), SolverKind::Jacobi);
        assert_eq!(rep.solver_switches(), 0);
    }

    #[test]
    fn solver_modifier_rescues_divergent_first_choice() {
        // Symmetric indefinite: structure unit picks CG (symmetry only),
        // CG breaks down, the modifier switches — robust convergence.
        let a = generate::jacobi_divergent_spd::<f32>(90, 0.7, 0, 0.0, 5);
        // make it indefinite-free: actually use a matrix where CG works
        // but Jacobi (picked first for dominance) fails: impossible since
        // dominance implies Jacobi converges. Instead: symmetric,
        // non-dominant, indefinite -> CG first, fails, BiCG/JB next.
        let a_indef = generate::spread_spectrum_blocks::<f32>(120, 0.45, 10.0, true, 7);
        let d = MatrixStructureUnit::new().analyze(&a_indef);
        let _ = a;
        if d.report.strictly_diagonally_dominant {
            // dominance held, Jacobi will just converge; nothing to test
            return;
        }
        let b = vec![1.0_f32; 120];
        let rep = acamar().run(&a_indef, &b).unwrap();
        assert!(rep.converged(), "attempts: {:?}", rep.attempts);
        assert!(rep.solver_switches() >= 1);
        assert!(!rep.attempts[0].outcome.converged());
    }

    #[test]
    fn rejects_non_finite_inputs_with_typed_errors() {
        let a = generate::poisson2d::<f32>(4, 4);
        let mut b = vec![1.0_f32; 16];
        b[5] = f32::NAN;
        let err = acamar().run(&a, &b).unwrap_err();
        assert_eq!(
            err,
            SparseError::NonFiniteValue {
                what: "right-hand side",
                index: 5
            }
        );
        let b = vec![1.0_f32; 16];
        let mut x0 = vec![0.0_f32; 16];
        x0[2] = f32::INFINITY;
        let err = acamar().run_with_guess(&a, &b, Some(&x0)).unwrap_err();
        assert_eq!(
            err,
            SparseError::NonFiniteValue {
                what: "initial guess",
                index: 2
            }
        );
    }

    #[test]
    fn rejects_dimension_mismatches_before_solving() {
        let a = generate::poisson2d::<f32>(4, 4);
        let err = acamar().run(&a, &[1.0_f32; 15]).unwrap_err();
        assert!(matches!(
            err,
            SparseError::DimensionMismatch {
                what: "right-hand side length",
                ..
            }
        ));
        let b = vec![1.0_f32; 16];
        let err = acamar()
            .run_with_guess(&a, &b, Some(&[0.0_f32; 3]))
            .unwrap_err();
        assert!(matches!(
            err,
            SparseError::DimensionMismatch {
                what: "initial guess length",
                ..
            }
        ));
    }

    #[test]
    fn forced_solver_runs_exactly_one_attempt() {
        let a = generate::poisson2d::<f32>(8, 8);
        let b = vec![1.0_f32; 64];
        let ac = acamar();
        let artifacts = ac.analyze(&a);
        let opts = RunOptions {
            solver: Some(SolverKind::Gmres),
            ..RunOptions::default()
        };
        let rep = ac
            .run_with_plan_opts(&a, &b, None, &artifacts, opts)
            .unwrap();
        assert_eq!(rep.attempts.len(), 1);
        assert_eq!(rep.final_solver(), SolverKind::Gmres);
        assert!(rep.converged());
    }

    #[test]
    fn analysis_artifacts_carry_a_valid_compiled_spmv_plan() {
        let a = generate::random_pattern::<f64>(
            300,
            RowDistribution::PowerLaw {
                min: 1,
                max: 40,
                exponent: 2.0,
            },
            11,
        );
        let ac = acamar();
        let artifacts = ac.analyze(&a);
        // The plan was compiled for this exact pattern and tiles every row.
        assert!(artifacts.compiled.matches(&a));
        assert!(artifacts.compiled.verify_pattern(&a));
        // Pattern-only: a same-pattern matrix with different values reuses
        // the cached plan, which is what PlanCache relies on.
        let mut scaled = a.clone();
        for v in scaled.values_mut() {
            *v *= 3.5;
        }
        assert!(artifacts.compiled.matches(&scaled));
        assert!(artifacts.compiled.verify_pattern(&scaled));
        // And executing through it is bitwise the generic CSR walk.
        let x: Vec<f64> = (0..300).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut y = vec![0.0_f64; 300];
        artifacts.compiled.execute(&scaled, &x, &mut y).unwrap();
        assert_eq!(y, scaled.mul_vec(&x).unwrap());
    }

    #[test]
    fn default_options_replay_the_plain_run_exactly() {
        let a = generate::poisson2d::<f32>(10, 10);
        let b = vec![1.0_f32; 100];
        let ac = acamar();
        let artifacts = ac.analyze(&a);
        let plain = ac.run_with_plan(&a, &b, None, &artifacts).unwrap();
        let opted = ac
            .run_with_plan_opts(&a, &b, None, &artifacts, RunOptions::default())
            .unwrap();
        assert_eq!(plain.solve.solution, opted.solve.solution);
        assert_eq!(plain.solve.iterations, opted.solve.iterations);
        assert_eq!(plain.stats.cycles, opted.stats.cycles);
    }

    #[test]
    fn symmetric_analysis_carries_triangular_plans() {
        let a = generate::poisson2d::<f64>(9, 7);
        let artifacts = acamar().analyze(&a);
        let (lower, upper) = &**artifacts
            .sptrsv
            .as_ref()
            .expect("symmetric pattern gets plans");
        assert!(lower.matches(&a) && upper.matches(&a));
        assert!(lower.verify_pattern(&a) && upper.verify_pattern(&a));
        // Nonsymmetric matrices skip the triangular analysis entirely.
        let ns = generate::convection_diffusion_2d::<f64>(6, 6, 2.0);
        assert!(acamar().analyze(&ns).sptrsv.is_none());
    }

    #[test]
    fn forced_pcg_replays_cached_plans_and_converges() {
        let a = generate::poisson2d::<f64>(12, 12);
        let b = vec![1.0_f64; 144];
        let ac = acamar();
        let artifacts = ac.analyze(&a);
        assert!(artifacts.sptrsv.is_some());
        let opts = RunOptions {
            solver: Some(SolverKind::PreconditionedCg),
            ..RunOptions::default()
        };
        let rep = ac
            .run_with_plan_opts(&a, &b, None, &artifacts, opts)
            .unwrap();
        assert!(rep.converged());
        assert_eq!(rep.final_solver(), SolverKind::PreconditionedCg);
        // IC(0) should beat plain CG on the Poisson stencil.
        let cg = ac
            .run_with_plan_opts(
                &a,
                &b,
                None,
                &artifacts,
                RunOptions {
                    solver: Some(SolverKind::ConjugateGradient),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(
            rep.solve.iterations < cg.solve.iterations,
            "IC(0)-PCG {} vs CG {}",
            rep.solve.iterations,
            cg.solve.iterations
        );
    }

    #[test]
    fn extended_solvers_pick_sor_for_dominant_symmetric_intake() {
        // Shift the Poisson diagonal so it is strictly dominant: the
        // extended intake should prefer SOR, the paper intake Jacobi.
        let mut a = generate::poisson2d::<f64>(8, 8);
        let (rp, ci): (Vec<usize>, Vec<usize>) = (a.row_ptr().to_vec(), a.col_idx().to_vec());
        for i in 0..64 {
            for (k, &c) in ci.iter().enumerate().take(rp[i + 1]).skip(rp[i]) {
                if c == i {
                    a.values_mut()[k] += 1.0;
                }
            }
        }
        let b = vec![1.0_f64; 64];
        let paper = acamar();
        assert_eq!(paper.analyze(&a).structure.solver, SolverKind::Jacobi);
        let ext = Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper()
                .with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000))
                .with_extended_solvers(true),
        );
        let artifacts = ext.analyze(&a);
        assert_eq!(artifacts.structure.solver, SolverKind::Sor);
        let rep = ext.run_with_plan(&a, &b, None, &artifacts).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.final_solver(), SolverKind::Sor);
        assert_eq!(rep.attempts.len(), 1);
    }

    #[test]
    fn every_attempt_charges_a_solver_reconfiguration() {
        let a = generate::poisson2d::<f32>(10, 10);
        let b = vec![1.0_f32; 100];
        let rep = acamar().run(&a, &b).unwrap();
        assert!(rep.stats.cycles.reconfig > 0);
        assert_eq!(rep.attempts.len(), 1);
    }

    #[test]
    fn report_time_accessors_are_consistent() {
        let a = generate::poisson2d::<f32>(8, 8);
        let rep = acamar().run(&a, &vec![1.0_f32; 64]).unwrap();
        assert!(rep.total_seconds() >= rep.compute_seconds());
        let hw = rep.into_hw_run();
        assert!(hw.gflops() > 0.0);
    }

    #[test]
    fn acamar_beats_oversized_static_baseline_on_utilization() {
        use acamar_fabric::StaticAccelerator;
        let a = generate::diagonally_dominant::<f32>(
            512,
            RowDistribution::Uniform { min: 2, max: 8 },
            1.5,
            11,
        );
        let b = vec![1.0_f32; 512];
        let rep = acamar().run(&a, &b).unwrap();
        let baseline = StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::Jacobi, 32)
            .run(&a, &b, &acamar().config().criteria)
            .unwrap();
        assert!(rep.converged() && baseline.solve.converged());
        assert!(
            rep.stats.spmv.underutilization() < baseline.stats.spmv.underutilization(),
            "acamar {} vs baseline {}",
            rep.stats.spmv.underutilization(),
            baseline.stats.spmv.underutilization()
        );
    }

    #[test]
    fn gmres_fallback_rescues_matrices_all_three_solvers_lose() {
        // Mildly-spread symmetric indefinite + asymmetry: JB/CG/BiCG all
        // fail, but restarted GMRES handles it.
        let base = generate::spread_spectrum_blocks::<f64>(120, 0.6, 100.0, true, 9);
        let ns = generate::nonsymmetric_perturbation(&base, 0.3, 10);
        let a: acamar_sparse::CsrMatrix<f32> = ns.cast();
        let b = vec![1.0_f32; 120];
        let criteria = ConvergenceCriteria::paper().with_max_iterations(800);
        let plain = Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper().with_criteria(criteria),
        )
        .run(&a, &b)
        .unwrap();
        if plain.converged() {
            // The construction happened to be solvable; nothing to test.
            return;
        }
        let rescued = Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper()
                .with_criteria(criteria)
                .with_gmres_fallback(true),
        )
        .run(&a, &b)
        .unwrap();
        assert!(rescued.converged(), "attempts {:?}", rescued.attempts);
        assert_eq!(rescued.final_solver(), SolverKind::Gmres);
        assert_eq!(rescued.attempts.len(), 4);
    }

    #[test]
    fn overlapped_reconfiguration_never_increases_total_time() {
        // A workload with several unroll changes per pass.
        let a = generate::random_pattern::<f32>(
            600,
            RowDistribution::Bimodal {
                low: 3,
                high: 40,
                high_fraction: 0.3,
            },
            13,
        );
        let dd = generate::diagonally_dominant::<f32>(
            600,
            RowDistribution::Bimodal {
                low: 3,
                high: 40,
                high_fraction: 0.3,
            },
            1.5,
            13,
        );
        let _ = a;
        let b = vec![1.0_f32; 600];
        let criteria = ConvergenceCriteria::paper().with_max_iterations(2000);
        let serial = Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper().with_criteria(criteria),
        )
        .run(&dd, &b)
        .unwrap();
        let overlapped = Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper()
                .with_criteria(criteria)
                .with_overlap(true),
        )
        .run(&dd, &b)
        .unwrap();
        assert!(serial.converged() && overlapped.converged());
        assert_eq!(
            serial.stats.cycles.compute(),
            overlapped.stats.cycles.compute(),
            "overlap must not change compute"
        );
        assert!(
            overlapped.stats.cycles.reconfig <= serial.stats.cycles.reconfig,
            "overlap {} vs serial {}",
            overlapped.stats.cycles.reconfig,
            serial.stats.cycles.reconfig
        );
    }

    #[test]
    fn unsolvable_by_all_three_reports_divergence() {
        // Non-symmetric, non-dominant, and hostile to BiCG-STAB too:
        // scale a spread indefinite matrix and perturb symmetry.
        let base = generate::spread_spectrum_blocks::<f64>(150, 0.45, 1e5, true, 9);
        let ns = generate::nonsymmetric_perturbation(&base, 0.5, 10);
        let a: acamar_sparse::CsrMatrix<f32> = ns.cast();
        let b = vec![1.0_f32; 150];
        let cfg = AcamarConfig::paper()
            .with_criteria(ConvergenceCriteria::paper().with_max_iterations(400));
        let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
            .run(&a, &b)
            .unwrap();
        if !rep.converged() {
            assert_eq!(rep.attempts.len(), 3, "should try all solvers");
        }
    }
}
