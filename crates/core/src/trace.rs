//! Row Length Trace unit and its tBuffer (paper Section IV-B, Eq. 7–9).
//!
//! The trace unit reads the CSR offsets, averages NNZ/row over each of
//! `SamplingRate` contiguous row sets, and stores the per-set optimal
//! unroll factors in the tBuffer consumed by the MSID chain.

use acamar_sparse::{stats, CsrMatrix, Scalar};
use std::ops::Range;

/// The per-set trace of optimal unroll factors.
#[derive(Debug, Clone, PartialEq)]
pub struct TBuffer {
    sets: Vec<Range<usize>>,
    avg_nnz: Vec<f64>,
    unrolls: Vec<usize>,
}

impl TBuffer {
    /// Number of sets (at most the sampling rate).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if the trace is empty (empty matrix).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The row range of set `i`.
    pub fn set_rows(&self, i: usize) -> Range<usize> {
        self.sets[i].clone()
    }

    /// All row ranges.
    pub fn sets(&self) -> &[Range<usize>] {
        &self.sets
    }

    /// Average NNZ/row per set (paper Eq. 7).
    pub fn avg_nnz(&self) -> &[f64] {
        &self.avg_nnz
    }

    /// Optimal unroll factor per set (`round(avg)`, at least 1).
    pub fn unrolls(&self) -> &[usize] {
        &self.unrolls
    }

    /// Replaces the unroll factors (used by the MSID chain).
    ///
    /// # Panics
    ///
    /// Panics if the length differs or any factor is zero.
    pub fn set_unrolls(&mut self, unrolls: Vec<usize>) {
        assert_eq!(unrolls.len(), self.sets.len(), "length mismatch");
        assert!(unrolls.iter().all(|&u| u > 0), "zero unroll factor");
        self.unrolls = unrolls;
    }

    /// Number of unroll-factor changes while walking the sets in order
    /// (the per-pass reconfiguration count of the Dynamic SpMV Kernel).
    pub fn reconfigurations_per_pass(&self) -> usize {
        self.unrolls.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// The Row Length Trace unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLengthTrace {
    /// Number of sets to sample (paper's `SamplingRate`).
    pub sampling_rate: usize,
    /// Clamp applied to per-set unroll factors.
    pub max_unroll: usize,
}

impl RowLengthTrace {
    /// Creates a trace unit.
    ///
    /// # Panics
    ///
    /// Panics if `max_unroll == 0`.
    pub fn new(sampling_rate: usize, max_unroll: usize) -> Self {
        assert!(max_unroll > 0, "max_unroll must be positive");
        RowLengthTrace {
            sampling_rate,
            max_unroll,
        }
    }

    /// Traces `a`, producing the tBuffer (paper Eq. 7–9: set size is
    /// `ceil(rows / SamplingRate)`, the optimal unroll factor of a set is
    /// the average NNZ/row, rounded and clamped to `[1, max_unroll]`).
    pub fn trace<T: Scalar>(&self, a: &CsrMatrix<T>) -> TBuffer {
        let rate = self.sampling_rate.max(1);
        let avg = stats::per_set_average_nnz(a, rate);
        let nrows = a.nrows();
        let set_size = if nrows == 0 { 0 } else { nrows.div_ceil(rate) };
        let mut sets = Vec::with_capacity(avg.len());
        let mut start = 0usize;
        while start < nrows {
            let end = (start + set_size).min(nrows);
            sets.push(start..end);
            start = end;
        }
        debug_assert_eq!(sets.len(), avg.len());
        let unrolls = avg
            .iter()
            .map(|&m| (m.round() as usize).clamp(1, self.max_unroll))
            .collect();
        TBuffer {
            sets,
            avg_nnz: avg,
            unrolls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::CooMatrix;

    fn matrix_with_counts(counts: &[usize]) -> CsrMatrix<f64> {
        let n = counts.len();
        let m = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut coo = CooMatrix::new(n, m);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn trace_computes_per_set_unrolls() {
        let a = matrix_with_counts(&[2, 4, 6, 8]);
        let t = RowLengthTrace::new(2, 64).trace(&a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.avg_nnz(), &[3.0, 7.0]);
        assert_eq!(t.unrolls(), &[3, 7]);
        assert_eq!(t.set_rows(0), 0..2);
        assert_eq!(t.set_rows(1), 2..4);
        assert_eq!(t.reconfigurations_per_pass(), 1);
    }

    #[test]
    fn unrolls_are_clamped() {
        let a = matrix_with_counts(&[100, 100, 0, 0]);
        let t = RowLengthTrace::new(2, 16).trace(&a);
        assert_eq!(t.unrolls(), &[16, 1]); // clamped high and low
    }

    #[test]
    fn sampling_rate_above_rows_gives_per_row_sets() {
        let a = matrix_with_counts(&[1, 2, 3]);
        let t = RowLengthTrace::new(100, 64).trace(&a);
        assert_eq!(t.len(), 3);
        assert_eq!(t.unrolls(), &[1, 2, 3]);
    }

    #[test]
    fn set_unrolls_validates() {
        let a = matrix_with_counts(&[2, 2]);
        let mut t = RowLengthTrace::new(1, 8).trace(&a);
        t.set_unrolls(vec![5]);
        assert_eq!(t.unrolls(), &[5]);
        assert_eq!(t.reconfigurations_per_pass(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_unrolls_rejects_wrong_length() {
        let a = matrix_with_counts(&[2, 2]);
        let mut t = RowLengthTrace::new(1, 8).trace(&a);
        t.set_unrolls(vec![5, 5]);
    }

    #[test]
    fn uniform_matrix_needs_no_reconfiguration() {
        let a = matrix_with_counts(&[4; 64]);
        let t = RowLengthTrace::new(8, 64).trace(&a);
        assert_eq!(t.reconfigurations_per_pass(), 0);
        assert!(t.unrolls().iter().all(|&u| u == 4));
    }
}
