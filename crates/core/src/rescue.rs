//! The rescue ladder: the escalation policy the batch engine climbs when
//! a job's primary Acamar run fails.
//!
//! The Solver Modifier already rescues *divergence* inside one run by
//! switching solvers (paper Fig. 3). The ladder sits a level above it and
//! handles what the modifier cannot: worker panics, injected datapath
//! faults that poison a whole attempt, and budget exhaustion. Each rung
//! re-runs the job a different way with a geometrically shrinking
//! iteration budget, so a hopeless job cannot hold a worker hostage.

use acamar_solvers::{extended_fallback_order, ConvergenceCriteria, SolverKind};

/// One rung of the rescue ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RescueStep {
    /// Re-run the same configuration: recovers transient faults (a
    /// panicked worker, a stuck datapath bit cleared by the region
    /// rewrite) at zero analysis cost.
    RetrySame,
    /// Force the next solver in the Solver Modifier's fallback order that
    /// has not been tried yet.
    NextSolver,
    /// Force the preconditioned solve (diagonal PCG on the fabric; the
    /// software ILU(0) variant `ilu_pcg` serves the same role off-fabric).
    Preconditioned,
    /// Restarted GMRES, the most robust and most expensive resort.
    GmresLastResort,
}

impl RescueStep {
    /// The full ladder, in climbing order.
    pub const LADDER: [RescueStep; 4] = [
        RescueStep::RetrySame,
        RescueStep::NextSolver,
        RescueStep::Preconditioned,
        RescueStep::GmresLastResort,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RescueStep::RetrySame => "retry-same",
            RescueStep::NextSolver => "next-solver",
            RescueStep::Preconditioned => "preconditioned",
            RescueStep::GmresLastResort => "gmres",
        }
    }
}

/// Bounds and backoff governing how far the engine climbs the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescuePolicy {
    /// Maximum rescue attempts per job (ladder rungs actually climbed;
    /// the primary run is not counted). Capped at
    /// [`RescueStep::LADDER`]'s length.
    pub max_rescues: usize,
    /// Per-rung multiplier on the iteration budget, so each rescue is
    /// cheaper than the run it rescues. Clamped to `(0, 1]`.
    pub budget_backoff: f64,
    /// Floor the backoff never shrinks the budget below.
    pub min_iterations: usize,
}

impl Default for RescuePolicy {
    fn default() -> Self {
        RescuePolicy {
            max_rescues: RescueStep::LADDER.len(),
            budget_backoff: 0.5,
            min_iterations: 50,
        }
    }
}

impl RescuePolicy {
    /// The rungs this policy will climb, in order.
    pub fn ladder(&self) -> &'static [RescueStep] {
        &RescueStep::LADDER[..self.max_rescues.min(RescueStep::LADDER.len())]
    }

    /// The convergence criteria for the rescue at `depth` (1-based: the
    /// first rescue runs at depth 1), shrinking `base`'s iteration budget
    /// by `budget_backoff^depth` down to `min_iterations`.
    pub fn rung_criteria(&self, base: &ConvergenceCriteria, depth: usize) -> ConvergenceCriteria {
        let backoff = self.budget_backoff.clamp(f64::MIN_POSITIVE, 1.0);
        let scaled = (base.max_iterations as f64 * backoff.powi(depth as i32)).floor() as usize;
        base.with_max_iterations(scaled.max(self.min_iterations))
    }

    /// The solver a rung should force, given the structure unit's
    /// `primary` pick and the kinds already `tried` (primary run
    /// included). `None` means the rung has nothing new to offer and is
    /// skipped without consuming an attempt.
    pub fn solver_for(
        &self,
        step: RescueStep,
        primary: SolverKind,
        tried: &[SolverKind],
    ) -> Option<SolverKind> {
        match step {
            RescueStep::RetrySame => Some(tried.last().copied().unwrap_or(primary)),
            // The extended order is the Solver Modifier's fallback order
            // with SOR appended, so the base solvers are still offered
            // first and existing ladders are unchanged; SOR only surfaces
            // once all three paper solvers have been burned.
            RescueStep::NextSolver => extended_fallback_order(primary)
                .into_iter()
                .find(|k| !tried.contains(k)),
            RescueStep::Preconditioned => (!tried.contains(&SolverKind::PreconditionedCg))
                .then_some(SolverKind::PreconditionedCg),
            RescueStep::GmresLastResort => {
                (!tried.contains(&SolverKind::Gmres)).then_some(SolverKind::Gmres)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_climbs_all_four_rungs() {
        let p = RescuePolicy::default();
        assert_eq!(p.ladder(), &RescueStep::LADDER);
        assert_eq!(
            RescuePolicy {
                max_rescues: 2,
                ..p
            }
            .ladder()
            .len(),
            2
        );
        for s in RescueStep::LADDER {
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn budget_backs_off_geometrically_with_a_floor() {
        let p = RescuePolicy::default();
        let base = ConvergenceCriteria::paper().with_max_iterations(1000);
        assert_eq!(p.rung_criteria(&base, 1).max_iterations, 500);
        assert_eq!(p.rung_criteria(&base, 2).max_iterations, 250);
        assert_eq!(p.rung_criteria(&base, 6).max_iterations, 50, "floor");
        assert_eq!(p.rung_criteria(&base, 1).tolerance, base.tolerance);
    }

    #[test]
    fn rungs_pick_solvers_that_add_information() {
        let p = RescuePolicy::default();
        let primary = SolverKind::ConjugateGradient;
        let tried = [SolverKind::ConjugateGradient];
        assert_eq!(
            p.solver_for(RescueStep::RetrySame, primary, &tried),
            Some(SolverKind::ConjugateGradient)
        );
        let next = p
            .solver_for(RescueStep::NextSolver, primary, &tried)
            .unwrap();
        assert_ne!(next, SolverKind::ConjugateGradient);
        assert_eq!(
            p.solver_for(RescueStep::Preconditioned, primary, &tried),
            Some(SolverKind::PreconditionedCg)
        );
        assert_eq!(
            p.solver_for(RescueStep::GmresLastResort, primary, &tried),
            Some(SolverKind::Gmres)
        );
        // With all three paper solvers burned, NextSolver escalates to
        // the extended set's SOR instead of stepping aside.
        let all_three = [
            SolverKind::ConjugateGradient,
            SolverKind::Jacobi,
            SolverKind::BiCgStab,
        ];
        assert_eq!(
            p.solver_for(RescueStep::NextSolver, primary, &all_three),
            Some(SolverKind::Sor)
        );
        let all_four = [
            SolverKind::ConjugateGradient,
            SolverKind::Jacobi,
            SolverKind::BiCgStab,
            SolverKind::Sor,
        ];
        assert_eq!(
            p.solver_for(RescueStep::NextSolver, primary, &all_four),
            None
        );
        // Already-burned rungs step aside instead of repeating themselves.
        let burned = [SolverKind::PreconditionedCg, SolverKind::Gmres];
        assert_eq!(
            p.solver_for(RescueStep::Preconditioned, primary, &burned),
            None
        );
        assert_eq!(
            p.solver_for(RescueStep::GmresLastResort, primary, &burned),
            None
        );
    }
}
