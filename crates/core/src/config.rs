//! Acamar configuration (the paper's hardware-configuration parameters,
//! Section V-D).

use acamar_solvers::ConvergenceCriteria;

/// Tunable parameters of the Acamar accelerator.
///
/// Defaults are the values the paper settles on for its headline
/// comparisons: `SamplingRate = 32`, `rOpt = 8`, MSID `tolerance = 0.15`,
/// problems processed in 4096-row chunks, and the paper's convergence
/// policy (`1e-5`, 200-iteration setup time).
#[derive(Debug, Clone, PartialEq)]
pub struct AcamarConfig {
    /// Number of row sets the Row Length Trace unit samples
    /// (paper Eq. 9; default 32).
    pub sampling_rate: usize,
    /// MSID chain stages (`rOpt`; 0 disables the optimization; default 8).
    pub r_opt: usize,
    /// MSID relative tolerance (default 0.15).
    pub msid_tolerance: f64,
    /// Unroll factor of the static initialize-phase SpMV engine
    /// (the "unoptimized variant", Section IV-B; default 4).
    pub init_unroll: usize,
    /// Clamp on per-set unroll factors (DFX region sizing; default 64).
    pub max_unroll: usize,
    /// Row-chunk size for processing large problems (default 4096).
    pub chunk_rows: usize,
    /// Convergence policy shared by all solver attempts.
    pub criteria: ConvergenceCriteria,
    /// Reconfigure to restarted GMRES if all three Acamar solvers diverge
    /// (an extension beyond the paper's design; default off).
    pub gmres_fallback: bool,
    /// Restart dimension for the GMRES fallback (default 60: wide enough
    /// for the indefinite spectra that defeat the three Acamar solvers).
    pub gmres_restart: usize,
    /// Overlap SpMV-region partial reconfiguration with compute
    /// (double-buffered DFX regions; extension, default off).
    pub overlap_reconfiguration: bool,
    /// Consider the extended solver set in the intake decision and the
    /// Solver Modifier ladder: symmetric strictly-dominant matrices with a
    /// positive diagonal select SOR first, and SOR joins the fallback
    /// order after the paper's three solvers (extension, default off —
    /// the paper's behavior is bit-for-bit unchanged when disabled).
    pub extended_solvers: bool,
}

impl AcamarConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        AcamarConfig {
            sampling_rate: 32,
            r_opt: 8,
            msid_tolerance: 0.15,
            init_unroll: 4,
            max_unroll: 64,
            chunk_rows: 4096,
            criteria: ConvergenceCriteria::paper(),
            gmres_fallback: false,
            gmres_restart: 60,
            overlap_reconfiguration: false,
            extended_solvers: false,
        }
    }

    /// Returns a copy with the GMRES last-resort fallback enabled.
    pub fn with_gmres_fallback(mut self, enabled: bool) -> Self {
        self.gmres_fallback = enabled;
        self
    }

    /// Returns a copy with overlapped reconfiguration enabled.
    pub fn with_overlap(mut self, enabled: bool) -> Self {
        self.overlap_reconfiguration = enabled;
        self
    }

    /// Returns a copy with the extended solver set (SOR in the intake
    /// decision and the modifier ladder) enabled.
    pub fn with_extended_solvers(mut self, enabled: bool) -> Self {
        self.extended_solvers = enabled;
        self
    }

    /// Returns a copy with a different sampling rate.
    pub fn with_sampling_rate(mut self, rate: usize) -> Self {
        self.sampling_rate = rate;
        self
    }

    /// Returns a copy with a different MSID stage count.
    pub fn with_r_opt(mut self, r_opt: usize) -> Self {
        self.r_opt = r_opt;
        self
    }

    /// Returns a copy with a different MSID tolerance.
    pub fn with_msid_tolerance(mut self, tol: f64) -> Self {
        self.msid_tolerance = tol;
        self
    }

    /// Returns a copy with a different convergence policy.
    pub fn with_criteria(mut self, criteria: ConvergenceCriteria) -> Self {
        self.criteria = criteria;
        self
    }
}

impl Default for AcamarConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let c = AcamarConfig::paper();
        assert_eq!(c.sampling_rate, 32);
        assert_eq!(c.r_opt, 8);
        assert!((c.msid_tolerance - 0.15).abs() < 1e-12);
        assert_eq!(c.chunk_rows, 4096);
        assert_eq!(c.criteria.setup_iterations, 200);
        assert!(!c.extended_solvers, "extensions default off");
    }

    #[test]
    fn builders_update_fields() {
        let c = AcamarConfig::paper()
            .with_sampling_rate(64)
            .with_r_opt(2)
            .with_msid_tolerance(0.6);
        assert_eq!(c.sampling_rate, 64);
        assert_eq!(c.r_opt, 2);
        assert!((c.msid_tolerance - 0.6).abs() < 1e-12);
        assert_eq!(AcamarConfig::default(), AcamarConfig::paper());
    }
}
