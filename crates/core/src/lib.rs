//! # acamar-core
//!
//! The Acamar accelerator (MICRO 2024): a dynamically reconfigurable
//! design that (i) selects and, on divergence, *switches* iterative
//! solvers for robust convergence, and (ii) reconfigures its SpMV engine's
//! unroll factor per set of rows to minimize resource underutilization,
//! with a Multi-Stage Iterative Decision (MSID) chain keeping the
//! reconfiguration rate low.
//!
//! The units of the paper's Fig. 3 map to modules here:
//!
//! | Paper unit | Module |
//! |---|---|
//! | Matrix Structure | [`MatrixStructureUnit`] |
//! | Row Length Trace + tBuffer | [`RowLengthTrace`], [`TBuffer`] |
//! | MSID Chain | [`MsidChain`] |
//! | Fine-Grained Reconfiguration | [`FineGrainedReconfigUnit`] |
//! | Reconfigurable Solver + Dynamic SpMV Kernel | `acamar_fabric::FabricKernels` driven by the plan |
//! | Solver Modifier | [`SolverModifier`] |
//! | the whole accelerator | [`Acamar`] |
//!
//! ```
//! use acamar_core::{Acamar, AcamarConfig};
//! use acamar_fabric::FabricSpec;
//! use acamar_sparse::generate;
//!
//! // A non-symmetric PDE problem: the Matrix Structure unit picks
//! // BiCG-STAB; the Fine-Grained unit plans per-set unroll factors.
//! let a = generate::convection_diffusion_2d::<f32>(16, 16, 2.0);
//! let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
//! let report = acamar.run(&a, &vec![1.0; 256])?;
//! assert!(report.converged());
//! println!("solved by {} after {} switches, {:.1}% underutilization",
//!     report.final_solver(),
//!     report.solver_switches(),
//!     100.0 * report.stats.spmv.underutilization());
//! # Ok::<(), acamar_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod acamar;
mod config;
mod fine_grained;
pub mod metrics;
mod msid;
mod rescue;
mod solver_modifier;
mod structure_unit;
mod trace;

pub use acamar::{Acamar, AcamarRunReport, AnalysisArtifacts, RunOptions, SolveAttempt};
pub use config::AcamarConfig;
pub use fine_grained::{FineGrainedPlan, FineGrainedReconfigUnit};
pub use msid::MsidChain;
pub use rescue::{RescuePolicy, RescueStep};
pub use solver_modifier::SolverModifier;
pub use structure_unit::{MatrixStructureUnit, StructureDecision};
pub use trace::{RowLengthTrace, TBuffer};
