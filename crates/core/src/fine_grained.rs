//! Fine-Grained Reconfiguration unit.
//!
//! Composes the Row Length Trace and the MSID chain into the unroll-factor
//! schedule the host uses to reconfigure the Dynamic SpMV Kernel
//! (paper Fig. 3, blue Resource Decision loop).

use crate::config::AcamarConfig;
use crate::msid::MsidChain;
use crate::trace::{RowLengthTrace, TBuffer};
use acamar_fabric::{ScheduleEntry, UnrollSchedule};
use acamar_sparse::{CsrMatrix, Scalar};

/// Outcome of the fine-grained analysis of one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FineGrainedPlan {
    /// Per-chunk tBuffers after MSID optimization (one per processed
    /// 4096-row chunk, paper Section V-B).
    pub tbuffers: Vec<TBuffer>,
    /// Reconfigurations per pass before MSID.
    pub reconfigs_before_msid: usize,
    /// Reconfigurations per pass after MSID.
    pub reconfigs_after_msid: usize,
    /// The schedule handed to the fabric.
    pub schedule: UnrollSchedule,
}

impl FineGrainedPlan {
    /// Reconfiguration rate reduction achieved by the MSID chain
    /// (`1 - after/before`; 0 when nothing to reduce).
    pub fn msid_reduction(&self) -> f64 {
        if self.reconfigs_before_msid == 0 {
            0.0
        } else {
            1.0 - self.reconfigs_after_msid as f64 / self.reconfigs_before_msid as f64
        }
    }
}

/// The Fine-Grained Reconfiguration unit.
#[derive(Debug, Clone, PartialEq)]
pub struct FineGrainedReconfigUnit {
    config: AcamarConfig,
}

impl FineGrainedReconfigUnit {
    /// Creates the unit with the given configuration.
    pub fn new(config: AcamarConfig) -> Self {
        FineGrainedReconfigUnit { config }
    }

    /// Analyzes `a` and produces the unroll-factor plan.
    ///
    /// The matrix is processed in row chunks of `chunk_rows` (the paper
    /// fixes the problem chunk to 4096x4096, Section V-B); *within each
    /// chunk* the Row Length Trace samples `SamplingRate` sets (Eq. 7–9)
    /// and the MSID chain (Algorithm 4) coalesces their unroll factors.
    /// Adjacent equal-unroll sets — including across chunk boundaries —
    /// merge into single schedule entries.
    pub fn plan<T: Scalar>(&self, a: &CsrMatrix<T>) -> FineGrainedPlan {
        let trace = RowLengthTrace::new(self.config.sampling_rate, self.config.max_unroll);
        let chain = MsidChain::new(self.config.r_opt, self.config.msid_tolerance);
        let chunk_rows = self.config.chunk_rows.max(1);

        let mut entries: Vec<ScheduleEntry> = Vec::new();
        let mut before = 0usize;
        let mut after = 0usize;
        let mut tbuffers = Vec::new();
        let mut start = 0usize;
        while start < a.nrows() || (a.nrows() == 0 && start == 0) {
            if a.nrows() == 0 {
                break;
            }
            let end = (start + chunk_rows).min(a.nrows());
            let chunk = a.row_slice(start..end);
            let mut tbuffer = trace.trace(&chunk);
            let (b, f) = chain.optimize(&mut tbuffer);
            before += b;
            after += f;
            for (i, range) in tbuffer.sets().iter().enumerate() {
                let u = tbuffer.unrolls()[i];
                let rows = (range.start + start)..(range.end + start);
                match entries.last_mut() {
                    Some(last) if last.unroll == u && last.rows.end == rows.start => {
                        last.rows.end = rows.end;
                    }
                    _ => entries.push(ScheduleEntry { rows, unroll: u }),
                }
            }
            tbuffers.push(tbuffer);
            start = end;
        }
        if entries.is_empty() {
            entries.push(ScheduleEntry {
                rows: 0..a.nrows(),
                unroll: 1,
            });
        }
        let schedule = UnrollSchedule::from_entries(a.nrows(), entries);
        FineGrainedPlan {
            tbuffers,
            reconfigs_before_msid: before,
            reconfigs_after_msid: after,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};
    use acamar_sparse::CooMatrix;

    fn unit(rate: usize, r_opt: usize) -> FineGrainedReconfigUnit {
        FineGrainedReconfigUnit::new(
            AcamarConfig::paper()
                .with_sampling_rate(rate)
                .with_r_opt(r_opt),
        )
    }

    fn matrix_with_counts(counts: &[usize]) -> acamar_sparse::CsrMatrix<f64> {
        let n = counts.len();
        let m = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut coo = CooMatrix::new(n, m);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn plan_merges_equal_adjacent_sets() {
        let a = matrix_with_counts(&[4, 4, 4, 4, 12, 12, 12, 12]);
        let p = unit(4, 0).plan(&a);
        // two distinct unrolls -> two schedule entries
        assert_eq!(p.schedule.entries().len(), 2);
        assert_eq!(p.schedule.entries()[0].unroll, 4);
        assert_eq!(p.schedule.entries()[1].unroll, 12);
        assert_eq!(p.schedule.changes_per_pass(), 1);
    }

    #[test]
    fn msid_reduces_schedule_entries() {
        // Slightly jittered row populations: without MSID every set gets
        // its own unroll; with MSID they collapse.
        let counts: Vec<usize> = (0..64).map(|i| 10 + (i % 2)).collect();
        let a = matrix_with_counts(&counts);
        let without = unit(16, 0).plan(&a);
        let with = unit(16, 8).plan(&a);
        assert!(
            with.schedule.changes_per_pass() <= without.schedule.changes_per_pass(),
            "with {} vs without {}",
            with.schedule.changes_per_pass(),
            without.schedule.changes_per_pass()
        );
        assert!(with.msid_reduction() >= 0.0);
    }

    #[test]
    fn plan_covers_all_rows() {
        let a =
            generate::random_pattern::<f64>(777, RowDistribution::Uniform { min: 1, max: 20 }, 3);
        let p = unit(32, 8).plan(&a);
        let last = p.schedule.entries().last().unwrap();
        assert_eq!(last.rows.end, 777);
        assert_eq!(p.schedule.entries().first().unwrap().rows.start, 0);
    }

    #[test]
    fn large_matrices_are_planned_per_chunk() {
        // 10 000 rows with a tiny chunk size: each chunk gets its own
        // tBuffer with `sampling_rate` sets inside it.
        let a = generate::random_pattern::<f64>(
            10_000,
            RowDistribution::Uniform { min: 1, max: 12 },
            9,
        );
        let cfg = AcamarConfig::paper().with_sampling_rate(8);
        let cfg = AcamarConfig {
            chunk_rows: 1000,
            ..cfg
        };
        let p = FineGrainedReconfigUnit::new(cfg).plan(&a);
        assert_eq!(p.tbuffers.len(), 10);
        assert!(p.tbuffers.iter().all(|t| t.len() == 8));
        assert_eq!(p.schedule.entries().last().unwrap().rows.end, 10_000);
        // chunk boundaries fall on multiples of 1000 within entries
        for e in p.schedule.entries() {
            assert!(e.unroll >= 1);
        }
    }

    #[test]
    fn chunked_and_unchunked_plans_agree_for_small_matrices() {
        let a =
            generate::random_pattern::<f64>(500, RowDistribution::Uniform { min: 1, max: 9 }, 4);
        // chunk_rows = 4096 > 500: exactly one chunk, same as unchunked.
        let p = unit(16, 8).plan(&a);
        assert_eq!(p.tbuffers.len(), 1);
        assert_eq!(p.tbuffers[0].len(), 16);
    }

    #[test]
    fn reduction_metric_bounds() {
        let a = matrix_with_counts(&[4; 32]);
        let p = unit(8, 8).plan(&a);
        assert_eq!(p.reconfigs_before_msid, 0);
        assert_eq!(p.msid_reduction(), 0.0);
    }
}
