//! # acamar-gpu
//!
//! Analytical GPU baseline for the Acamar (MICRO 2024) reproduction.
//!
//! The paper measures cuSPARSE CSR SpMV on an Nvidia GTX 1650 Super with
//! Nsight (Section V-E) and reports compute-unit underutilization
//! (Fig. 8) and achieved fraction of peak throughput (Fig. 9, bottom).
//! Without the physical card, this crate models the two first-order
//! effects that produce those numbers:
//!
//! * **warp-level lane waste** — cuSPARSE's row-per-warp CSR kernel
//!   issues 32 lanes per row pass, so a row with few non-zeros wastes most
//!   of the warp (the direct GPU analog of the paper's Eq. 5);
//! * **memory-boundedness** — CSR SpMV moves ~12 bytes per 2 FLOPs, so
//!   achieved throughput is capped by DRAM bandwidth at a tiny fraction of
//!   the peak FP32 rate.
//!
//! ```
//! use acamar_gpu::{GpuSpec, model_csr_spmv};
//! use acamar_sparse::generate;
//!
//! let a = generate::poisson2d::<f32>(32, 32); // ~5 NNZ/row
//! let r = model_csr_spmv(&GpuSpec::gtx1650_super(), &a);
//! // 5 of 32 lanes busy => ~84% underutilized, like the paper's ~81%.
//! assert!(r.lane_underutilization > 0.7);
//! assert!(r.fraction_of_peak < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod solver;

pub use solver::{estimate_solver_run, GpuSolveEstimate};

use acamar_sparse::{CsrMatrix, Scalar};

/// Warp width on all modern Nvidia GPUs.
pub const WARP_SIZE: u64 = 32;

/// Static description of a GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: u64,
    /// CUDA cores per SM.
    pub cores_per_sm: u64,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// The paper's baseline card: GTX 1650 Super (TU116, 1280 cores,
    /// 20 SMs, 192 GB/s GDDR6).
    pub fn gtx1650_super() -> Self {
        GpuSpec {
            name: "GTX 1650 Super",
            sms: 20,
            cores_per_sm: 64,
            clock_ghz: 1.725,
            mem_gbps: 192.0,
            launch_overhead_s: 5e-6,
        }
    }

    /// Peak FP32 throughput in FLOP/s (`cores x 2 x clock`).
    pub fn peak_flops(&self) -> f64 {
        (self.sms * self.cores_per_sm) as f64 * 2.0 * self.clock_ghz * 1e9
    }

    /// Warps the device can issue per cycle (`cores / warp`).
    pub fn warp_issue_per_cycle(&self) -> f64 {
        (self.sms * self.cores_per_sm) as f64 / WARP_SIZE as f64
    }
}

/// Result of modeling one CSR SpMV on a GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpmvReport {
    /// Lane slots issued across all warp passes (`Σ ceil(nnz/32)·32`).
    pub lanes_issued: u64,
    /// Lane slots that carried useful work (`Σ nnz`).
    pub lanes_used: u64,
    /// Compute-unit underutilization in `[0, 1]` (Fig. 8's metric): the
    /// fraction of issued lanes that idled.
    pub lane_underutilization: f64,
    /// Elapsed seconds (max of compute, memory, and launch overhead).
    pub elapsed_s: f64,
    /// Sustained GFLOP/s.
    pub achieved_gflops: f64,
    /// Achieved fraction of peak FP32 throughput (Fig. 9 bottom).
    pub fraction_of_peak: f64,
    /// `true` when the memory model bound the elapsed time.
    pub memory_bound: bool,
}

/// Models a cuSPARSE-style row-per-warp CSR SpMV on `gpu`.
///
/// Compute time: each row takes `ceil(nnz/32)` warp passes (empty rows
/// still cost one); the device retires [`GpuSpec::warp_issue_per_cycle`]
/// passes per cycle. Memory time: every stored entry streams 8 B (value +
/// column) plus a 4 B gather from `x` (modeled at 1.5x for imperfect
/// coalescing) and 8 B per row of pointers/output.
pub fn model_csr_spmv<T: Scalar>(gpu: &GpuSpec, a: &CsrMatrix<T>) -> GpuSpmvReport {
    let mut passes = 0u64;
    let mut used = 0u64;
    for i in 0..a.nrows() {
        let nnz = a.row_nnz(i) as u64;
        passes += nnz.div_ceil(WARP_SIZE).max(1);
        used += nnz;
    }
    let issued = passes * WARP_SIZE;
    let compute_s = passes as f64 / gpu.warp_issue_per_cycle() / (gpu.clock_ghz * 1e9);
    let bytes = 8.0 * used as f64 + 1.5 * 4.0 * used as f64 + 8.0 * a.nrows() as f64;
    let memory_s = bytes / (gpu.mem_gbps * 1e9);
    let elapsed = compute_s.max(memory_s).max(gpu.launch_overhead_s);
    let flops = 2.0 * used as f64;
    let achieved = flops / elapsed;
    GpuSpmvReport {
        lanes_issued: issued,
        lanes_used: used,
        lane_underutilization: if issued == 0 {
            0.0
        } else {
            (issued - used) as f64 / issued as f64
        },
        elapsed_s: elapsed,
        achieved_gflops: achieved / 1e9,
        fraction_of_peak: achieved / gpu.peak_flops(),
        memory_bound: memory_s >= compute_s && memory_s >= gpu.launch_overhead_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};
    use acamar_sparse::CooMatrix;

    fn gpu() -> GpuSpec {
        GpuSpec::gtx1650_super()
    }

    #[test]
    fn peak_flops_matches_datasheet() {
        // 1280 cores x 2 x 1.725 GHz = 4.416 TFLOPS
        let p = gpu().peak_flops();
        assert!((p / 1e12 - 4.416).abs() < 0.01, "peak {p}");
    }

    #[test]
    fn sparse_rows_waste_most_of_the_warp() {
        let a = generate::poisson2d::<f32>(32, 32); // <= 5 NNZ/row
        let r = model_csr_spmv(&gpu(), &a);
        assert!(
            r.lane_underutilization > 0.8,
            "underutilization {}",
            r.lane_underutilization
        );
        assert!(r.fraction_of_peak < 0.05);
    }

    #[test]
    fn dense_rows_fill_the_warp() {
        let mut coo = CooMatrix::<f32>::new(8, 64);
        for i in 0..8 {
            for j in 0..64 {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let r = model_csr_spmv(&gpu(), &a);
        assert_eq!(r.lane_underutilization, 0.0);
        assert_eq!(r.lanes_used, 512);
    }

    #[test]
    fn spmv_is_memory_bound_at_scale() {
        let a = generate::random_pattern::<f32>(
            20_000,
            RowDistribution::Uniform { min: 8, max: 64 },
            3,
        );
        let r = model_csr_spmv(&gpu(), &a);
        assert!(r.memory_bound);
        // Bandwidth-bound roofline: 2 FLOP / 14 B at 192 GB/s is about
        // 27 GFLOP/s — under 1% of the 4.4 TFLOPS peak.
        assert!(r.fraction_of_peak < 0.01, "{}", r.fraction_of_peak);
        assert!(r.achieved_gflops > 1.0);
    }

    #[test]
    fn tiny_kernels_pay_launch_overhead() {
        let a = generate::poisson1d::<f32>(8);
        let r = model_csr_spmv(&gpu(), &a);
        assert_eq!(r.elapsed_s, gpu().launch_overhead_s);
        assert!(!r.memory_bound);
    }

    #[test]
    fn empty_rows_still_cost_a_pass() {
        let coo = CooMatrix::<f32>::new(4, 4);
        let a = coo.to_csr();
        let r = model_csr_spmv(&gpu(), &a);
        assert_eq!(r.lanes_issued, 4 * WARP_SIZE);
        assert_eq!(r.lanes_used, 0);
        assert_eq!(r.lane_underutilization, 1.0);
    }

    #[test]
    fn average_matches_paper_ballpark_on_mixed_suite() {
        // Paper Fig. 8: GPU underutilized ~81% on average across the
        // SuiteSparse picks. A mix of sparsity shapes should land near
        // that (70-97%).
        let mats = [
            generate::poisson2d::<f32>(40, 40),
            generate::random_pattern::<f32>(2_000, RowDistribution::Uniform { min: 2, max: 12 }, 1),
            generate::random_pattern::<f32>(
                2_000,
                RowDistribution::PowerLaw {
                    min: 1,
                    max: 200,
                    exponent: 2.2,
                },
                2,
            ),
        ];
        let avg: f64 = mats
            .iter()
            .map(|m| model_csr_spmv(&gpu(), m).lane_underutilization)
            .sum::<f64>()
            / mats.len() as f64;
        assert!(avg > 0.7 && avg < 0.97, "avg underutilization {avg}");
    }
}
