//! End-to-end GPU solver-run estimation.
//!
//! Combines the per-SpMV model with a bandwidth-bound model of the dense
//! vector kernels to estimate what a full iterative solve would cost on
//! the GPU — the baseline view behind the paper's efficiency argument
//! (GPUs spend their peak FLOPS on memory traffic for these workloads).

use crate::{model_csr_spmv, GpuSpec};
use acamar_solvers::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar};

/// Estimated cost of a full solver run on a GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSolveEstimate {
    /// Solver modeled.
    pub solver: SolverKind,
    /// Iterations assumed (take them from a software solve).
    pub iterations: usize,
    /// Seconds spent in SpMV kernels.
    pub spmv_s: f64,
    /// Seconds spent in dense vector kernels (bandwidth + launch bound).
    pub dense_s: f64,
    /// Total estimated seconds.
    pub total_s: f64,
    /// Sustained GFLOP/s over the whole run.
    pub effective_gflops: f64,
    /// Fraction of the device's peak FP32 rate actually sustained.
    pub fraction_of_peak: f64,
}

/// Per-iteration kernel mix of each solver: `(spmv_calls, dense_kernels,
/// dense_flops_per_element)`.
///
/// Dense kernel counts follow the paper's Algorithms 1–3 (vector updates,
/// dot products, norms); GMRES is approximated at its restart-average
/// Gram-Schmidt cost.
fn kernel_mix(solver: SolverKind) -> (u64, u64, u64) {
    match solver {
        SolverKind::Jacobi => (1, 5, 2),
        SolverKind::ConjugateGradient => (1, 6, 2),
        SolverKind::PreconditionedCg => (1, 8, 2),
        SolverKind::BiCgStab | SolverKind::BiCg => (2, 12, 2),
        SolverKind::ConjugateResidual => (1, 8, 2),
        SolverKind::GaussSeidel | SolverKind::Sor => (1, 3, 2),
        // ~restart/2 orthogonalization kernels on average per inner step
        SolverKind::Gmres => (1, 16, 2),
    }
}

/// Estimates the cost of `iterations` of `solver` on `a`, on `gpu`.
///
/// SpMV time comes from [`model_csr_spmv`]; each dense kernel streams
/// three `n`-length fp32 vectors through DRAM and pays one launch
/// overhead.
///
/// # Examples
///
/// ```
/// use acamar_gpu::{estimate_solver_run, GpuSpec};
/// use acamar_solvers::SolverKind;
/// use acamar_sparse::generate;
///
/// let a = generate::poisson2d::<f32>(32, 32);
/// let est = estimate_solver_run(
///     &GpuSpec::gtx1650_super(), &a, SolverKind::ConjugateGradient, 100);
/// assert!(est.total_s > 0.0);
/// assert!(est.fraction_of_peak < 0.02); // memory/launch bound
/// ```
pub fn estimate_solver_run<T: Scalar>(
    gpu: &GpuSpec,
    a: &CsrMatrix<T>,
    solver: SolverKind,
    iterations: usize,
) -> GpuSolveEstimate {
    let (spmv_calls, dense_kernels, dense_flops) = kernel_mix(solver);
    let spmv = model_csr_spmv(gpu, a);
    let n = a.nrows() as f64;
    let dense_bytes_per_kernel = 3.0 * 4.0 * n;
    let dense_kernel_s = (dense_bytes_per_kernel / (gpu.mem_gbps * 1e9)).max(gpu.launch_overhead_s);

    let iters = iterations as f64;
    let spmv_s = iters * spmv_calls as f64 * spmv.elapsed_s;
    let dense_s = iters * dense_kernels as f64 * dense_kernel_s;
    let total_s = spmv_s + dense_s;
    let flops = iters
        * (spmv_calls as f64 * 2.0 * a.nnz() as f64
            + dense_kernels as f64 * dense_flops as f64 * n);
    let effective = if total_s > 0.0 { flops / total_s } else { 0.0 };
    GpuSolveEstimate {
        solver,
        iterations,
        spmv_s,
        dense_s,
        total_s,
        effective_gflops: effective / 1e9,
        fraction_of_peak: effective / gpu.peak_flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate;

    fn gpu() -> GpuSpec {
        GpuSpec::gtx1650_super()
    }

    #[test]
    fn estimate_scales_linearly_with_iterations() {
        let a = generate::poisson2d::<f32>(24, 24);
        let e100 = estimate_solver_run(&gpu(), &a, SolverKind::ConjugateGradient, 100);
        let e200 = estimate_solver_run(&gpu(), &a, SolverKind::ConjugateGradient, 200);
        assert!((e200.total_s / e100.total_s - 2.0).abs() < 1e-9);
        assert!((e200.effective_gflops - e100.effective_gflops).abs() < 1e-9);
    }

    #[test]
    fn bicgstab_costs_more_per_iteration_than_cg() {
        let a = generate::poisson2d::<f32>(24, 24);
        let cg = estimate_solver_run(&gpu(), &a, SolverKind::ConjugateGradient, 100);
        let bi = estimate_solver_run(&gpu(), &a, SolverKind::BiCgStab, 100);
        assert!(bi.total_s > cg.total_s);
        assert!(bi.spmv_s > cg.spmv_s);
    }

    #[test]
    fn sustained_rate_is_a_tiny_fraction_of_peak() {
        let a = generate::poisson3d::<f32>(12, 12, 12);
        let e = estimate_solver_run(&gpu(), &a, SolverKind::Jacobi, 500);
        assert!(e.fraction_of_peak < 0.02, "{}", e.fraction_of_peak);
        assert!(e.effective_gflops > 0.0);
    }

    #[test]
    fn zero_iterations_cost_nothing() {
        let a = generate::poisson1d::<f32>(32);
        let e = estimate_solver_run(&gpu(), &a, SolverKind::Jacobi, 0);
        assert_eq!(e.total_s, 0.0);
        assert_eq!(e.effective_gflops, 0.0);
    }
}
