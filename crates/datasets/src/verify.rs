//! Measuring the convergence triple of a dataset (Table II columns).

use crate::dataset::{Dataset, ExpectedConvergence};
use acamar_solvers::{bicgstab, conjugate_gradient, jacobi, ConvergenceCriteria, SoftwareKernels};

/// Measured convergence of the three Acamar solvers on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredTriple {
    /// What each solver did (JB, CG, BiCG-STAB).
    pub measured: ExpectedConvergence,
    /// Iterations each solver performed.
    pub iterations: [usize; 3],
    /// Final relative residual of each solver.
    pub final_residuals: [f64; 3],
}

impl MeasuredTriple {
    /// `true` if the measurement matches the paper's triple for `d`.
    pub fn matches(&self, d: &Dataset) -> bool {
        self.measured == d.expected
    }
}

/// The convergence policy used for Table II measurements: the paper's
/// tolerance and setup time with a budget sized for the scaled-down
/// analogs.
pub fn table2_criteria() -> ConvergenceCriteria {
    ConvergenceCriteria::paper().with_max_iterations(2500)
}

/// Runs JB, CG, and BiCG-STAB on `d` in the paper's `f32` precision and
/// reports the triple.
pub fn measure_triple(d: &Dataset) -> MeasuredTriple {
    let a = d.matrix();
    let b = d.rhs();
    let criteria = table2_criteria();

    let mut kj = SoftwareKernels::new();
    let jb = jacobi(&a, &b, None, &criteria, &mut kj).expect("well-formed dataset");
    let mut kc = SoftwareKernels::new();
    let cg = conjugate_gradient(&a, &b, None, &criteria, &mut kc).expect("well-formed dataset");
    let mut kb = SoftwareKernels::new();
    let bi = bicgstab(&a, &b, None, &criteria, &mut kb).expect("well-formed dataset");

    MeasuredTriple {
        measured: ExpectedConvergence {
            jacobi: jb.converged(),
            cg: cg.converged(),
            bicgstab: bi.converged(),
        },
        iterations: [jb.iterations, cg.iterations, bi.iterations],
        final_residuals: [
            jb.final_residual(),
            cg.final_residual(),
            bi.final_residual(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{by_id, suite};

    #[test]
    fn every_table2_row_reproduces() {
        let mut failures = Vec::new();
        for d in suite() {
            let m = measure_triple(&d);
            if !m.matches(&d) {
                failures.push(format!(
                    "{} ({}): expected {} measured {} iters {:?} res {:?}",
                    d.id,
                    d.name,
                    d.expected.marks(),
                    m.measured.marks(),
                    m.iterations,
                    m.final_residuals,
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "{} Table II mismatches:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }

    #[test]
    fn measured_iterations_are_sane_for_a_converging_row() {
        let d = by_id("Wa").unwrap();
        let m = measure_triple(&d);
        assert!(m.matches(&d));
        assert!(m.iterations[0] > 0 && m.iterations[0] < 500);
        assert!(m.final_residuals[1] < 1e-5);
    }
}
