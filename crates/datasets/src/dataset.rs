//! The Table II dataset suite.

use acamar_sparse::generate::{self, RowDistribution};
use acamar_sparse::CsrMatrix;

/// Structural class of a synthetic dataset — determines which generator
/// builds its matrix and thereby its per-solver convergence behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StructuralClass {
    /// Strictly diagonally dominant, symmetric positive definite: all
    /// three solvers converge (✓ ✓ ✓).
    DominantSpd {
        /// Off-diagonal NNZ/row distribution.
        dist: RowDistribution,
    },
    /// SPD but `2D - A` indefinite: Jacobi diverges, CG/BiCG-STAB
    /// converge (✗ ✓ ✓).
    JacobiDivergentSpd {
        /// Intra-block coupling in `(0.5, 1)`.
        coupling: f64,
        /// Weak long-range entries per row (sparsity-shape realism).
        extra_per_row: usize,
    },
    /// Strictly diagonally dominant but non-symmetric: Jacobi and
    /// BiCG-STAB converge, CG fails (✓ ✗ ✓).
    DominantNonsymmetric {
        /// Off-diagonal NNZ/row distribution.
        dist: RowDistribution,
        /// Dominance factor (> 1). Kept close to 1 for dense-row
        /// datasets: a huge diagonal makes the matrix effectively
        /// near-symmetric and lets CG converge despite the asymmetry.
        dominance: f64,
    },
    /// Centered convection–diffusion at cell Péclet > 2: only BiCG-STAB
    /// converges (✗ ✗ ✓).
    HighPecletConvection {
        /// Cell Péclet number (> 2 for the hard regime).
        peclet: f64,
    },
    /// Symmetric indefinite with a spread spectrum: only Jacobi converges
    /// (✓ ✗ ✗) — dominance holds, CG breaks down, f32 BiCG-STAB
    /// stagnates.
    IndefiniteSpread {
        /// Spectrum spread (condition-like factor).
        cond: f64,
    },
    /// SPD, ill-conditioned, Jacobi-divergent: only CG converges in f32
    /// (✗ ✓ ✗) — the `beircuit` row.
    IllConditionedSpd {
        /// Condition-number target.
        cond: f64,
    },
    /// 3D Poisson FDM operator (✓ ✓ ✓).
    Poisson3d {
        /// Grid side (matrix dimension is `side³`).
        side: usize,
    },
    /// Shifted grid-graph Laplacian (✓ ✓ ✓) — circuit-style.
    ShiftedGridLaplacian {
        /// Grid side.
        side: usize,
        /// Diagonal shift (> 0 for strict dominance).
        shift: f64,
    },
}

/// Expected Table II convergence triple (JB, CG, BiCG-STAB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpectedConvergence {
    /// Jacobi converges.
    pub jacobi: bool,
    /// CG converges.
    pub cg: bool,
    /// BiCG-STAB converges.
    pub bicgstab: bool,
}

impl ExpectedConvergence {
    /// Formats as the paper's ✓/✗ triple.
    pub fn marks(&self) -> String {
        let m = |b: bool| if b { "✓" } else { "✗" };
        format!("{} {} {}", m(self.jacobi), m(self.cg), m(self.bicgstab))
    }
}

/// A synthetic analog of one Table II dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The paper's two-letter ID (e.g. `"2C"`).
    pub id: &'static str,
    /// The SuiteSparse matrix name it stands in for.
    pub name: &'static str,
    /// The original dimension as printed in Table II.
    pub paper_dim: &'static str,
    /// The original sparsity as printed in Table II.
    pub paper_sparsity: &'static str,
    /// Dimension of the synthetic analog.
    pub dim: usize,
    /// Structural class driving generation.
    pub class: StructuralClass,
    /// The paper's convergence triple for this row.
    pub expected: ExpectedConvergence,
    /// Generation seed.
    pub seed: u64,
}

impl Dataset {
    /// Generates the matrix in `f64`.
    pub fn matrix_f64(&self) -> CsrMatrix<f64> {
        match self.class {
            StructuralClass::DominantSpd { dist } => {
                generate::spd_from_pattern(self.dim, dist, 0.3, self.seed)
            }
            StructuralClass::JacobiDivergentSpd {
                coupling,
                extra_per_row,
            } => generate::jacobi_divergent_spd(self.dim, coupling, extra_per_row, 0.01, self.seed),
            StructuralClass::DominantNonsymmetric { dist, dominance } => {
                generate::diagonally_dominant(self.dim, dist, dominance, self.seed)
            }
            StructuralClass::HighPecletConvection { peclet } => {
                let side = (self.dim as f64).sqrt().round() as usize;
                generate::convection_diffusion_2d_centered(side, side, peclet)
            }
            StructuralClass::IndefiniteSpread { cond } => {
                generate::spread_spectrum_blocks(self.dim, 0.3, cond, true, self.seed)
            }
            StructuralClass::IllConditionedSpd { cond } => {
                generate::spread_spectrum_blocks(self.dim, 0.7, cond, false, self.seed)
            }
            StructuralClass::Poisson3d { side } => generate::poisson3d(side, side, side),
            StructuralClass::ShiftedGridLaplacian { side, shift } => {
                generate::grid_laplacian(side, side, shift)
            }
        }
    }

    /// Generates the matrix in the paper's compute precision (`f32`).
    pub fn matrix(&self) -> CsrMatrix<f32> {
        self.matrix_f64().cast()
    }

    /// The right-hand side used for this dataset (all ones, the usual
    /// benchmark choice).
    pub fn rhs(&self) -> Vec<f32> {
        vec![1.0; self.matrix_rows()]
    }

    /// Rows of the generated matrix (accounts for grid-derived classes
    /// whose dimension is rounded).
    pub fn matrix_rows(&self) -> usize {
        match self.class {
            StructuralClass::HighPecletConvection { .. } => {
                let side = (self.dim as f64).sqrt().round() as usize;
                side * side
            }
            StructuralClass::Poisson3d { side } => side * side * side,
            StructuralClass::ShiftedGridLaplacian { side, .. } => side * side,
            _ => self.dim,
        }
    }
}

/// The 25 Table II datasets, in the paper's row order.
pub fn suite() -> Vec<Dataset> {
    use StructuralClass::*;
    let yes = |jacobi, cg, bicgstab| ExpectedConvergence {
        jacobi,
        cg,
        bicgstab,
    };
    let uni = |min, max| RowDistribution::Uniform { min, max };
    vec![
        Dataset {
            id: "2C",
            name: "2cubes_sphere",
            paper_dim: "101K",
            paper_sparsity: "0.016",
            dim: 1500,
            class: JacobiDivergentSpd {
                coupling: 0.70,
                extra_per_row: 3,
            },
            expected: yes(false, true, true),
            seed: 0x2C01,
        },
        Dataset {
            id: "Of",
            name: "offshore",
            paper_dim: "259K",
            paper_sparsity: "0.0063",
            dim: 1800,
            class: JacobiDivergentSpd {
                coupling: 0.75,
                extra_per_row: 5,
            },
            expected: yes(false, true, true),
            seed: 0x0F02,
        },
        Dataset {
            id: "Wi",
            name: "windtunnel_evap3d",
            paper_dim: "40K",
            paper_sparsity: "0.1426",
            dim: 1200,
            class: DominantNonsymmetric {
                dist: uni(24, 40),
                dominance: 1.15,
            },
            expected: yes(true, false, true),
            seed: 0x5703,
        },
        Dataset {
            id: "If",
            name: "ifiss_mat",
            paper_dim: "96K",
            paper_sparsity: "0.0388",
            dim: 1600, // 40x40 grid
            class: HighPecletConvection { peclet: 4.0 },
            expected: yes(false, false, true),
            seed: 0x1F04,
        },
        Dataset {
            id: "Wa",
            name: "wang3",
            paper_dim: "177K",
            paper_sparsity: "8.3e-5",
            dim: 1700,
            class: DominantSpd { dist: uni(3, 9) },
            expected: yes(true, true, true),
            seed: 0x5A05,
        },
        Dataset {
            id: "Fe",
            name: "fe_rotor",
            paper_dim: "99K",
            paper_sparsity: "5.6e-6",
            dim: 1500,
            class: IndefiniteSpread { cond: 1e4 },
            expected: yes(true, false, false),
            seed: 0xFE06,
        },
        Dataset {
            id: "Eb",
            name: "epb3",
            paper_dim: "84K",
            paper_sparsity: "0.0065",
            dim: 1400,
            class: DominantNonsymmetric {
                dist: uni(2, 8),
                dominance: 1.4,
            },
            expected: yes(true, false, true),
            seed: 0xEB07,
        },
        Dataset {
            id: "Qa",
            name: "qa8fm",
            paper_dim: "66K",
            paper_sparsity: "0.038",
            dim: 1300,
            class: JacobiDivergentSpd {
                coupling: 0.65,
                extra_per_row: 8,
            },
            expected: yes(false, true, true),
            seed: 0x0A08,
        },
        Dataset {
            id: "Th",
            name: "thermomech_TC",
            paper_dim: "711K",
            paper_sparsity: "0.0068",
            dim: 2400,
            class: JacobiDivergentSpd {
                coupling: 0.70,
                extra_per_row: 2,
            },
            expected: yes(false, true, true),
            seed: 0x7C09,
        },
        Dataset {
            id: "Bc",
            name: "beircuit",
            paper_dim: "375K",
            paper_sparsity: "4.8e-5",
            dim: 1200,
            class: IllConditionedSpd { cond: 1e9 },
            expected: yes(false, true, false),
            seed: 0xBC0A,
        },
        Dataset {
            id: "Sd",
            name: "sd2010",
            paper_dim: "88K",
            paper_sparsity: "5.2e-5",
            dim: 1400,
            class: IndefiniteSpread { cond: 1e3 },
            expected: yes(true, false, false),
            seed: 0x5D0B,
        },
        Dataset {
            id: "Li",
            name: "light_in_tissue",
            paper_dim: "29K",
            paper_sparsity: "0.0474",
            dim: 1100,
            class: DominantSpd { dist: uni(10, 24) },
            expected: yes(true, true, true),
            seed: 0x110C,
        },
        Dataset {
            id: "Po",
            name: "poisson3Db",
            paper_dim: "85K",
            paper_sparsity: "0.032",
            dim: 1728,
            class: Poisson3d { side: 12 },
            expected: yes(true, true, true),
            seed: 0x700D,
        },
        Dataset {
            id: "Cr",
            name: "crystm03",
            paper_dim: "583K",
            paper_sparsity: "0.0957",
            dim: 2100,
            class: JacobiDivergentSpd {
                coupling: 0.80,
                extra_per_row: 6,
            },
            expected: yes(false, true, true),
            seed: 0xC20E,
        },
        Dataset {
            id: "At",
            name: "atmosmodm",
            paper_dim: "1.4M",
            paper_sparsity: "0.0005",
            dim: 2500,
            class: DominantSpd { dist: uni(2, 6) },
            expected: yes(true, true, true),
            seed: 0xA70F,
        },
        Dataset {
            id: "Mo",
            name: "mono_500Hz",
            paper_dim: "169K",
            paper_sparsity: "0.0175",
            dim: 1600,
            class: DominantSpd { dist: uni(8, 30) },
            expected: yes(true, true, true),
            seed: 0x3010,
        },
        Dataset {
            id: "Ct",
            name: "cti",
            paper_dim: "16K",
            paper_sparsity: "1.8e-4",
            dim: 900,
            class: IndefiniteSpread { cond: 1e4 },
            expected: yes(true, false, false),
            seed: 0xC711,
        },
        Dataset {
            id: "Ns",
            name: "ns3Da",
            paper_dim: "1.67M",
            paper_sparsity: "7.2e-7",
            dim: 2500, // 50x50 grid
            class: HighPecletConvection { peclet: 5.0 },
            expected: yes(false, false, true),
            seed: 0x4512,
        },
        Dataset {
            id: "Fi",
            name: "finan512",
            paper_dim: "74K",
            paper_sparsity: "0.0107",
            dim: 1300,
            class: DominantSpd {
                dist: RowDistribution::Bimodal {
                    low: 3,
                    high: 50,
                    high_fraction: 0.05,
                },
            },
            expected: yes(true, true, true),
            seed: 0xF113,
        },
        Dataset {
            id: "G2",
            name: "G2_circuit",
            paper_dim: "150K",
            paper_sparsity: "2.8e-5",
            dim: 1600, // 40x40 grid
            class: ShiftedGridLaplacian {
                side: 40,
                shift: 0.5,
            },
            expected: yes(true, true, true),
            seed: 0x6214,
        },
        Dataset {
            id: "Ga",
            name: "GaAsH6",
            paper_dim: "3.3M",
            paper_sparsity: "5.3e-8",
            dim: 2700,
            class: JacobiDivergentSpd {
                coupling: 0.72,
                extra_per_row: 12,
            },
            expected: yes(false, true, true),
            seed: 0x6A15,
        },
        Dataset {
            id: "Si",
            name: "Si343H6",
            paper_dim: "5.1M",
            paper_sparsity: "0.016",
            dim: 3000,
            class: JacobiDivergentSpd {
                coupling: 0.68,
                extra_per_row: 16,
            },
            expected: yes(false, true, true),
            seed: 0x5116,
        },
        Dataset {
            id: "To",
            name: "torso2",
            paper_dim: "1M",
            paper_sparsity: "1.1e-5",
            dim: 2500,
            class: DominantSpd { dist: uni(4, 12) },
            expected: yes(true, true, true),
            seed: 0x7017,
        },
        Dataset {
            id: "Ci",
            name: "cit-HepPh",
            paper_dim: "27K",
            paper_sparsity: "1.9e-5",
            dim: 1000,
            class: IndefiniteSpread { cond: 3e3 },
            expected: yes(true, false, false),
            seed: 0xC118,
        },
        Dataset {
            id: "Tf",
            name: "Trefethen_20000",
            paper_dim: "20K",
            paper_sparsity: "0.0014",
            dim: 1000,
            class: JacobiDivergentSpd {
                coupling: 0.78,
                extra_per_row: 4,
            },
            expected: yes(false, true, true),
            seed: 0x7F19,
        },
    ]
}

/// Looks a dataset up by its two-letter ID.
pub fn by_id(id: &str) -> Option<Dataset> {
    suite().into_iter().find(|d| d.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_25_rows_in_paper_order() {
        let s = suite();
        assert_eq!(s.len(), 25);
        assert_eq!(s[0].id, "2C");
        assert_eq!(s[24].id, "Tf");
        // IDs are unique
        let mut ids: Vec<_> = s.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn expected_triples_match_table2_counts() {
        let s = suite();
        let all3 = s
            .iter()
            .filter(|d| d.expected.jacobi && d.expected.cg && d.expected.bicgstab)
            .count();
        assert_eq!(all3, 8, "✓✓✓ rows");
        let cg_only_fails = s
            .iter()
            .filter(|d| d.expected.jacobi && !d.expected.cg && d.expected.bicgstab)
            .count();
        assert_eq!(cg_only_fails, 2, "✓✗✓ rows");
        let jacobi_fails = s
            .iter()
            .filter(|d| !d.expected.jacobi && d.expected.cg && d.expected.bicgstab)
            .count();
        assert_eq!(jacobi_fails, 8, "✗✓✓ rows");
        let bicg_only = s
            .iter()
            .filter(|d| !d.expected.jacobi && !d.expected.cg && d.expected.bicgstab)
            .count();
        assert_eq!(bicg_only, 2, "✗✗✓ rows");
        let jb_only = s
            .iter()
            .filter(|d| d.expected.jacobi && !d.expected.cg && !d.expected.bicgstab)
            .count();
        assert_eq!(jb_only, 4, "✓✗✗ rows");
        let cg_only = s
            .iter()
            .filter(|d| !d.expected.jacobi && d.expected.cg && !d.expected.bicgstab)
            .count();
        assert_eq!(cg_only, 1, "✗✓✗ rows");
    }

    #[test]
    fn matrices_generate_with_consistent_dims() {
        for d in suite() {
            let m = d.matrix();
            assert_eq!(m.nrows(), d.matrix_rows(), "{}", d.name);
            assert_eq!(m.nrows(), m.ncols(), "{}", d.name);
            assert!(m.nnz() > 0, "{}", d.name);
            assert_eq!(d.rhs().len(), m.nrows());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = by_id("Wa").unwrap().matrix();
        let b = by_id("Wa").unwrap().matrix();
        assert_eq!(a, b);
        assert!(by_id("zz").is_none());
    }

    #[test]
    fn marks_format() {
        let e = ExpectedConvergence {
            jacobi: true,
            cg: false,
            bicgstab: true,
        };
        assert_eq!(e.marks(), "✓ ✗ ✓");
    }
}
