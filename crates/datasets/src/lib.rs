//! # acamar-datasets
//!
//! Synthetic analogs of the 25 SuiteSparse matrices the Acamar paper
//! evaluates (Table II). Each [`Dataset`] carries the paper's metadata
//! (ID, name, original dimension/sparsity), the *structural class* that
//! drives its generator, and the paper's expected JB/CG/BiCG-STAB
//! convergence triple; [`verify::measure_triple`] re-measures that triple
//! by actually running the solvers in the paper's `f32` precision.
//!
//! Why synthetic: the reproduction has no access to the SuiteSparse
//! collection, and Table II's behavior depends only on structural
//! properties (diagonal dominance, symmetry, definiteness, spectrum
//! spread) that the generators in `acamar_sparse::generate` control
//! directly. See DESIGN.md §2 for the substitution argument.
//!
//! ```
//! use acamar_datasets::{by_id, verify};
//!
//! let d = by_id("Wa").unwrap(); // wang3: ✓ ✓ ✓
//! let measured = verify::measure_triple(&d);
//! assert!(measured.matches(&d));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
pub mod laplacian;
pub mod stress;
pub mod verify;

pub use dataset::{by_id, suite, Dataset, ExpectedConvergence, StructuralClass};
pub use laplacian::{laplacian_suite, LaplacianKind, LaplacianWorkload};
pub use stress::{stress_suite, StressKind, StressWorkload};
