//! Stress workloads beyond Table II.
//!
//! These exercise regimes the paper's dataset table does not isolate:
//! extreme row-length skew (where fine-grained reconfiguration matters
//! most), chunked processing (matrices larger than the 4096-row problem
//! chunk), and heavy-tailed graph structure. Used by the ablation benches
//! and the design-space example; each row records the structural intent
//! so tests can verify the generators keep delivering it.

use acamar_sparse::generate::{self, RowDistribution};
use acamar_sparse::CsrMatrix;

/// What a stress workload is designed to stress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StressKind {
    /// Bimodal rows: mostly sparse with dense outliers (circuit rails).
    BimodalSkew,
    /// Heavy-tailed (power-law) rows: citation/web-graph shape.
    PowerLawSkew,
    /// Uniform dense-ish rows: FEM-like blocks.
    DenseBlocks,
    /// More rows than one 4096-row problem chunk.
    MultiChunk,
}

/// A named stress workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StressWorkload {
    /// Short name.
    pub name: &'static str,
    /// What it stresses.
    pub kind: StressKind,
    /// Matrix dimension.
    pub dim: usize,
    /// Generation seed.
    pub seed: u64,
}

impl StressWorkload {
    /// Generates the matrix (strictly diagonally dominant so every solver
    /// path is exercised without convergence surprises).
    pub fn matrix(&self) -> CsrMatrix<f32> {
        let dist = match self.kind {
            StressKind::BimodalSkew => RowDistribution::Bimodal {
                low: 3,
                high: 48,
                high_fraction: 0.08,
            },
            StressKind::PowerLawSkew => RowDistribution::PowerLaw {
                min: 1,
                max: 120,
                exponent: 2.1,
            },
            StressKind::DenseBlocks => RowDistribution::Uniform { min: 20, max: 28 },
            StressKind::MultiChunk => RowDistribution::Uniform { min: 2, max: 10 },
        };
        generate::diagonally_dominant::<f64>(self.dim, dist, 1.5, self.seed).cast()
    }

    /// The all-ones right-hand side.
    pub fn rhs(&self) -> Vec<f32> {
        vec![1.0; self.dim]
    }
}

/// The stress suite.
pub fn stress_suite() -> Vec<StressWorkload> {
    vec![
        StressWorkload {
            name: "bimodal-circuit",
            kind: StressKind::BimodalSkew,
            dim: 2048,
            seed: 0x51,
        },
        StressWorkload {
            name: "powerlaw-graph",
            kind: StressKind::PowerLawSkew,
            dim: 2048,
            seed: 0x52,
        },
        StressWorkload {
            name: "fem-dense-blocks",
            kind: StressKind::DenseBlocks,
            dim: 1536,
            seed: 0x53,
        },
        StressWorkload {
            name: "multi-chunk",
            kind: StressKind::MultiChunk,
            dim: 10_000,
            seed: 0x54,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_solvers::{jacobi, ConvergenceCriteria, SoftwareKernels};
    use acamar_sparse::RowNnzStats;

    #[test]
    fn suite_shapes_match_their_kinds() {
        for w in stress_suite() {
            let a = w.matrix();
            assert_eq!(a.nrows(), w.dim, "{}", w.name);
            let s = RowNnzStats::of(&a);
            match w.kind {
                StressKind::BimodalSkew | StressKind::PowerLawSkew => {
                    assert!(s.cv > 0.8, "{}: cv {}", w.name, s.cv)
                }
                StressKind::DenseBlocks => {
                    assert!(s.mean > 20.0, "{}: mean {}", w.name, s.mean)
                }
                StressKind::MultiChunk => {
                    assert!(a.nrows() > 4096, "{}", w.name)
                }
            }
        }
    }

    #[test]
    fn all_stress_workloads_are_jacobi_solvable() {
        // Strict dominance by construction: Jacobi must converge, so the
        // ablations can run any solver path safely.
        for w in stress_suite() {
            if w.dim > 4096 {
                continue; // covered by the chunking test below, keep CI fast
            }
            let a = w.matrix();
            let mut k = SoftwareKernels::new();
            let rep = jacobi(
                &a,
                &w.rhs(),
                None,
                &ConvergenceCriteria::paper().with_max_iterations(500),
                &mut k,
            )
            .unwrap();
            assert!(rep.converged(), "{}: {:?}", w.name, rep.outcome);
        }
    }

    #[test]
    fn multi_chunk_workload_exceeds_paper_chunk() {
        let w = stress_suite()
            .into_iter()
            .find(|w| w.kind == StressKind::MultiChunk)
            .unwrap();
        assert!(w.dim > acamar_sparse::chunk::PAPER_CHUNK_ROWS);
    }
}
