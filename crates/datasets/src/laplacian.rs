//! The Laplacian/stencil workload suite.
//!
//! Native workloads for the PR10 solver families: discrete Laplacians are
//! symmetric positive definite, so they exercise SOR, CG, and the IC(0)
//! preconditioned CG path on exactly the problem class incomplete
//! factorizations were designed for — and their wavefront structure gives
//! the level-scheduled SpTRSV kernel predictable parallelism to scale
//! against. The suite grows the convergence matrix beyond Table II's 25
//! rows with four stencil families: isotropic 2D/3D Poisson, anisotropic
//! diffusion (stretched grids), and jumped-coefficient diffusion
//! (discontinuous media), each at two sizes.

use acamar_sparse::{generate, CsrMatrix};

/// Which stencil family a Laplacian workload discretizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaplacianKind {
    /// Isotropic 5-point 2D Poisson.
    Poisson2d,
    /// Isotropic 7-point 3D Poisson.
    Poisson3d,
    /// Anisotropic 2D diffusion: the y-direction coupling is scaled by
    /// `eps`, stretching the spectrum the way thin-domain grids do.
    Anisotropic2d {
        /// Transverse diffusion coefficient (`0 < eps`, typically `≪ 1`).
        eps: f64,
    },
    /// 2D diffusion with a piecewise-constant coefficient jumping by a
    /// factor `jump` across the domain midline (layered media).
    JumpCoefficient2d {
        /// Coefficient ratio across the interface (`> 0`).
        jump: f64,
    },
}

/// A named Laplacian workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LaplacianWorkload {
    /// Short name (bench row label).
    pub name: &'static str,
    /// The stencil family.
    pub kind: LaplacianKind,
    /// Grid extent per dimension (`nx`; the suite uses `ny = nx` and,
    /// for 3D, `nz = nx`).
    pub nx: usize,
}

impl LaplacianWorkload {
    /// Generates the coefficient matrix in `f64` (the precision the
    /// preconditioned benches run in).
    pub fn matrix_f64(&self) -> CsrMatrix<f64> {
        match self.kind {
            LaplacianKind::Poisson2d => generate::poisson2d(self.nx, self.nx),
            LaplacianKind::Poisson3d => generate::poisson3d(self.nx, self.nx, self.nx),
            LaplacianKind::Anisotropic2d { eps } => {
                generate::anisotropic_poisson2d(self.nx, self.nx, 1.0, eps)
            }
            LaplacianKind::JumpCoefficient2d { jump } => {
                generate::jump_poisson2d(self.nx, self.nx, jump)
            }
        }
    }

    /// Number of unknowns.
    pub fn unknowns(&self) -> usize {
        match self.kind {
            LaplacianKind::Poisson3d => self.nx * self.nx * self.nx,
            _ => self.nx * self.nx,
        }
    }

    /// The all-ones right-hand side (a uniform source term).
    pub fn rhs(&self) -> Vec<f64> {
        vec![1.0; self.unknowns()]
    }
}

/// The Laplacian suite: four stencil families at two sizes each.
pub fn laplacian_suite() -> Vec<LaplacianWorkload> {
    vec![
        LaplacianWorkload {
            name: "poisson2d-24",
            kind: LaplacianKind::Poisson2d,
            nx: 24,
        },
        LaplacianWorkload {
            name: "poisson2d-40",
            kind: LaplacianKind::Poisson2d,
            nx: 40,
        },
        LaplacianWorkload {
            name: "poisson3d-8",
            kind: LaplacianKind::Poisson3d,
            nx: 8,
        },
        LaplacianWorkload {
            name: "poisson3d-12",
            kind: LaplacianKind::Poisson3d,
            nx: 12,
        },
        LaplacianWorkload {
            name: "aniso2d-24",
            kind: LaplacianKind::Anisotropic2d { eps: 0.05 },
            nx: 24,
        },
        LaplacianWorkload {
            name: "aniso2d-40",
            kind: LaplacianKind::Anisotropic2d { eps: 0.05 },
            nx: 40,
        },
        LaplacianWorkload {
            name: "jump2d-24",
            kind: LaplacianKind::JumpCoefficient2d { jump: 1e3 },
            nx: 24,
        },
        LaplacianWorkload {
            name: "jump2d-40",
            kind: LaplacianKind::JumpCoefficient2d { jump: 1e3 },
            nx: 40,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_solvers::{
        conjugate_gradient, ic0_preconditioned_cg, ConvergenceCriteria, SoftwareKernels,
    };
    use acamar_sparse::analysis;

    #[test]
    fn every_workload_is_symmetric_with_positive_diagonal() {
        for w in laplacian_suite() {
            let a = w.matrix_f64();
            assert_eq!(a.nrows(), w.unknowns(), "{}", w.name);
            assert_eq!(w.rhs().len(), w.unknowns(), "{}", w.name);
            let r = analysis::analyze(&a);
            assert!(r.symmetric, "{} must be symmetric", w.name);
            assert!(
                r.positive_diagonal,
                "{} must have a positive diagonal",
                w.name
            );
        }
    }

    #[test]
    fn ic0_pcg_converges_across_the_suite_in_fewer_iterations_than_cg() {
        let criteria = ConvergenceCriteria::paper().with_max_iterations(4000);
        let mut total_cg = 0usize;
        let mut total_pcg = 0usize;
        for w in laplacian_suite() {
            let a = w.matrix_f64();
            let b = w.rhs();
            let mut kc = SoftwareKernels::new();
            let cg = conjugate_gradient(&a, &b, None, &criteria, &mut kc).unwrap();
            let mut kp = SoftwareKernels::new();
            let pcg = ic0_preconditioned_cg(&a, &b, None, &criteria, &mut kp, None).unwrap();
            assert!(cg.converged(), "{}: CG {:?}", w.name, cg.outcome);
            assert!(pcg.converged(), "{}: PCG {:?}", w.name, pcg.outcome);
            assert!(
                pcg.iterations <= cg.iterations,
                "{}: PCG {} vs CG {}",
                w.name,
                pcg.iterations,
                cg.iterations
            );
            total_cg += cg.iterations;
            total_pcg += pcg.iterations;
        }
        assert!(
            2 * total_pcg <= total_cg,
            "IC(0) should at least halve total iterations: {total_pcg} vs {total_cg}"
        );
    }
}
