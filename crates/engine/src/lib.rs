//! # acamar-engine
//!
//! A concurrent batch-solve service over the [`Acamar`] accelerator.
//!
//! The accelerator's robustness comes from two host-side decision loops —
//! the Matrix Structure unit's solver pick and the Fine-Grained
//! Reconfiguration unit's per-row-set unroll plan (with its MSID
//! schedule). Batch workloads (time stepping, parameter sweeps, many
//! right-hand sides) re-run those loops on matrices whose sparsity
//! pattern they have already seen. This crate removes that redundancy:
//!
//! * [`PatternFingerprint`] keys a CSR pattern by `(nrows, ncols, nnz)`
//!   plus an FNV-1a digest of `row_ptr`/`col_idx`;
//! * [`PlanCache`] maps fingerprints to shared
//!   [`AnalysisArtifacts`](acamar_core::AnalysisArtifacts) behind an
//!   `RwLock`, building each pattern's artifacts exactly once even under
//!   concurrent misses;
//! * [`Engine`] shards [`SolveJob`]s across scoped worker threads,
//!   replays cached artifacts through
//!   [`Acamar::run_with_plan`](acamar_core::Acamar::run_with_plan), and
//!   aggregates a [`BatchReport`] (per-job results in submission order,
//!   merged fabric statistics, per-solver attempt histogram, cache
//!   hits/misses and plan-build cycles saved, jobs/sec).
//!
//! Determinism: job results are written back by submission slot and
//! `run_with_plan` is a pure function of `(matrix, rhs, guess,
//! artifacts)`, so a batch's solution vectors are bitwise identical
//! whatever the worker count or scheduling.
//!
//! # Hardening and fault injection
//!
//! Every job runs panic-isolated; inputs are validated up front
//! ([`SolveError::Invalid`]); [`ResilienceConfig`] adds per-job
//! deadlines, iteration budgets, and the
//! [`RescuePolicy`](acamar_core::RescuePolicy) rescue ladder; and
//! [`Engine::with_fault_injection`] wires a deterministic
//! [`FaultInjector`](acamar_faultline::FaultInjector) through every seam
//! (RHS intake, plan cache, reconfiguration, SpMV datapath, the workers
//! themselves). Each batch reconciles the injector's ledger against job
//! outcomes into a [`RobustnessReport`], whose invariant
//! `detected + recovered + exhausted == injected` holds per category.
//!
//! ```
//! use acamar_core::{Acamar, AcamarConfig};
//! use acamar_engine::Engine;
//! use acamar_fabric::FabricSpec;
//! use acamar_sparse::generate;
//!
//! let engine = Engine::with_workers(
//!     Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()),
//!     4,
//! );
//! let a = generate::poisson2d::<f64>(16, 16);
//! let rhss: Vec<Vec<f64>> = (0..8).map(|k| vec![k as f64 + 1.0; 256]).collect();
//! let batch = engine.solve_batch(&a, &rhss).unwrap();
//! assert!(batch.all_converged());
//! assert_eq!(batch.cache.misses, 1); // one analysis served all 8 solves
//! assert_eq!(batch.cache.hits, 7);
//! ```
//!
//! [`Acamar`]: acamar_core::Acamar

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod engine;
mod error;
mod fingerprint;
mod robustness;
mod sequence;

pub use cache::{CacheStats, PlanCache};
pub use engine::{BatchReport, Engine, EngineCounters, ResilienceConfig, SolveJob};
pub use error::SolveError;
pub use fingerprint::PatternFingerprint;
pub use robustness::{FaultTally, JobDisposition, RobustnessReport, DEPTH_BUCKETS};
pub use sequence::{
    PlanAction, Sequence, SequenceConfig, SequenceJob, SequenceStats, SequenceStepReport, WarmStart,
};
