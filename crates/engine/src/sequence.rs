//! Matrix-sequence solving: plan reuse, band patching, and warm starts.
//!
//! Time-stepping and parameter-continuation workloads solve a *sequence*
//! of systems whose matrices evolve slowly: most steps keep the previous
//! sparsity pattern exactly, and the steps that do change it touch a
//! handful of rows. A [`Sequence`] exploits both regularities:
//!
//! * **Plan reuse** — a step whose pattern is unchanged reuses the cached
//!   `(fingerprint, policy)` artifacts through the [`PlanCache`] lookup
//!   path, so eviction is always an honest miss and never a dangling
//!   reuse.
//! * **Band patching** — a step whose pattern changed in few rows patches
//!   only the affected [`CompiledSpmv`](acamar_sparse::CompiledSpmv)
//!   bands via [`CompiledSpmv::patch`](acamar_sparse::CompiledSpmv::patch)
//!   (the MSID `band_hints()` boundaries are the patch units), skipping
//!   the full structure/MSID re-analysis. A delta larger than
//!   [`SequenceConfig::patch_max_dirty_fraction`] falls back to a full
//!   recompile, as does a shape change or an evicted base plan.
//! * **Warm starts** — the previous step's solution seeds the next solve
//!   when its relative residual against the new `(A, b)` passes
//!   [`SequenceConfig::warm_start_max_residual`]; a rejection falls back
//!   to the deterministic cold start, so replaying a sequence is bitwise
//!   reproducible either way.
//! * **NNZ-sort pre-pass** — [`SequenceConfig::with_reorder`] applies the
//!   row-NNZ sort permutation once at [`Sequence`] open and transparently
//!   permutes every step's inputs and solutions, amortizing the paper's
//!   §V-A pre-pass over the whole sequence.
//!
//! ```
//! use acamar_core::{Acamar, AcamarConfig};
//! use acamar_engine::{Engine, PlanAction, SequenceConfig, SequenceJob};
//! use acamar_fabric::FabricSpec;
//! use acamar_sparse::generate;
//! use std::sync::Arc;
//!
//! let engine = Engine::with_workers(
//!     Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()),
//!     2,
//! );
//! let a = Arc::new(generate::poisson2d::<f64>(16, 16));
//! let mut seq = engine
//!     .open_sequence(Arc::clone(&a), SequenceConfig::default())
//!     .unwrap();
//! for k in 0..4 {
//!     let rhs = vec![1.0 + k as f64; 256];
//!     let step = seq.step(SequenceJob::new(Arc::clone(&a), rhs)).unwrap();
//!     assert!(step.report.solve.converged());
//!     assert_eq!(step.plan, PlanAction::Reused);
//! }
//! let stats = seq.stats();
//! assert_eq!(stats.plans_reused, 4);
//! assert!(stats.warm_starts_used + stats.warm_starts_rejected >= 1);
//! // The whole sequence ran on one analysis.
//! assert_eq!(engine.counters().cache.misses, 1);
//! ```

use crate::engine::{Engine, SolveJob};
use crate::error::SolveError;
use crate::fingerprint::PatternFingerprint;
use acamar_core::{AcamarRunReport, AnalysisArtifacts};
use acamar_sparse::permute::{
    permutation_by_row_nnz, permute_symmetric, permute_vec, unpermute_vec,
};
use acamar_sparse::{BandHint, CompiledSpmv, CsrMatrix, DeterminismPolicy, PatternDelta, Scalar};
use acamar_telemetry::{Counter, EventKind};
use std::sync::Arc;
use std::time::Instant;

/// Knobs governing a [`Sequence`]'s amortization machinery. The defaults
/// are safe for any workload: warm starts gate on a relative residual of
/// `1.0` (the residual of the zero cold start, so a warm start is never
/// *worse* than cold), and patching engages only below a quarter of the
/// rows dirty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceConfig {
    /// Determinism tier every step solves under (and the plan-cache key
    /// tier). Default: [`DeterminismPolicy::Deterministic`].
    pub policy: DeterminismPolicy,
    /// Whether to seed each step with the previous step's solution when
    /// the residual gate passes. Default: `true`.
    pub warm_start: bool,
    /// Relative-residual gate `‖b − A·x_prev‖ / ‖b‖` above which the
    /// previous solution is rejected in favor of the deterministic cold
    /// start. Default: `1.0` — the zero guess's own residual, so a warm
    /// start is accepted exactly when it is at least as good as cold.
    pub warm_start_max_residual: f64,
    /// Largest fraction of dirty rows a pattern delta may touch and still
    /// be band-patched; larger deltas re-run the full analysis. Default:
    /// `0.25`.
    pub patch_max_dirty_fraction: f64,
    /// Patch-unit granularity: MSID hints wider than this many rows are
    /// split into tiles of at most this size when the sequence (re)compiles
    /// its plan, so a small delta recompiles one tile instead of one
    /// monolithic hint. The MSID schedule legitimately emits hints spanning
    /// most of a structurally uniform matrix — useless as patch units —
    /// and per-row SpMV accumulation is band-local, so retiling cannot
    /// change results. `0` keeps the MSID hints verbatim. Default: `64`.
    pub patch_tile_rows: usize,
    /// Apply the row-NNZ sort permutation once at open and permute every
    /// step through it. Default: `false`.
    pub reorder: bool,
}

impl Default for SequenceConfig {
    fn default() -> SequenceConfig {
        SequenceConfig {
            policy: DeterminismPolicy::Deterministic,
            warm_start: true,
            warm_start_max_residual: 1.0,
            patch_max_dirty_fraction: 0.25,
            patch_tile_rows: 64,
            reorder: false,
        }
    }
}

impl SequenceConfig {
    /// Sets the determinism tier.
    pub fn with_policy(mut self, policy: DeterminismPolicy) -> SequenceConfig {
        self.policy = policy;
        self
    }

    /// Enables or disables warm starts.
    pub fn with_warm_start(mut self, enabled: bool) -> SequenceConfig {
        self.warm_start = enabled;
        self
    }

    /// Sets the warm-start relative-residual gate.
    pub fn with_warm_start_max_residual(mut self, residual: f64) -> SequenceConfig {
        self.warm_start_max_residual = residual;
        self
    }

    /// Sets the dirty-row fraction above which a delta recompiles instead
    /// of patching (`0.0` disables patching entirely).
    pub fn with_patch_max_dirty_fraction(mut self, fraction: f64) -> SequenceConfig {
        self.patch_max_dirty_fraction = fraction;
        self
    }

    /// Sets the patch-unit tile size in rows (`0` keeps the MSID hints
    /// verbatim).
    pub fn with_patch_tile_rows(mut self, rows: usize) -> SequenceConfig {
        self.patch_tile_rows = rows;
        self
    }

    /// Enables or disables the one-shot NNZ-sort pre-pass at open.
    pub fn with_reorder(mut self, enabled: bool) -> SequenceConfig {
        self.reorder = enabled;
        self
    }
}

/// One step of a [`Sequence`]: the evolved matrix and its right-hand
/// side. The matrix may differ from the previous step's in values,
/// pattern, or both — the sequence diffs patterns itself.
#[derive(Debug, Clone)]
pub struct SequenceJob<T> {
    /// System matrix for this step.
    pub matrix: Arc<CsrMatrix<T>>,
    /// Right-hand side for this step.
    pub rhs: Vec<T>,
}

impl<T: Scalar> SequenceJob<T> {
    /// A step solving `matrix · x = rhs`.
    pub fn new(matrix: Arc<CsrMatrix<T>>, rhs: Vec<T>) -> SequenceJob<T> {
        SequenceJob { matrix, rhs }
    }
}

/// How a step obtained its execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Pattern unchanged: the cached `(fingerprint, policy)` artifacts
    /// were reused (via the honest cache-lookup path).
    Reused,
    /// Small pattern delta: only the dirty bands of the compiled SpMV
    /// plan were recompiled and spliced.
    Patched {
        /// Rows whose pattern differed from the previous step.
        dirty_rows: usize,
    },
    /// Pattern changed too much (or the base plan was evicted): the full
    /// structure/MSID/compile analysis ran.
    Recompiled,
}

/// How a step's initial guess was chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmStart {
    /// No previous solution was available (or warm starts are disabled):
    /// the deterministic zero cold start.
    Cold,
    /// The previous solution passed the residual gate and seeded the
    /// solve.
    Used {
        /// Its relative residual `‖b − A·x_prev‖ / ‖b‖` against this
        /// step's system.
        residual: f64,
    },
    /// The previous solution failed the residual gate; the solve cold
    /// started.
    Rejected {
        /// The rejected relative residual.
        residual: f64,
    },
}

/// One solved sequence step: the full run report plus how the plan and
/// initial guess were obtained.
#[derive(Debug, Clone)]
pub struct SequenceStepReport<T> {
    /// The underlying Acamar run report. When the sequence reorders, the
    /// solution vector has already been mapped back to the caller's row
    /// ordering.
    pub report: AcamarRunReport<T>,
    /// How this step's execution plan was obtained.
    pub plan: PlanAction,
    /// How this step's initial guess was chosen.
    pub warm_start: WarmStart,
}

/// Running totals across a [`Sequence`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequenceStats {
    /// Steps submitted (including steps whose solve errored).
    pub steps: u64,
    /// Steps that reused the cached plan unchanged.
    pub plans_reused: u64,
    /// Steps that band-patched the previous plan.
    pub plans_patched: u64,
    /// Steps (plus the open) that ran the full analysis.
    pub plans_recompiled: u64,
    /// Steps seeded from the previous solution.
    pub warm_starts_used: u64,
    /// Steps whose previous solution failed the residual gate.
    pub warm_starts_rejected: u64,
    /// Wall-clock nanoseconds spent band-patching.
    pub patch_nanos: u64,
    /// Wall-clock nanoseconds spent in full cache lookups/analyses (the
    /// open, reuse lookups, and recompiles).
    pub analysis_nanos: u64,
}

impl SequenceStats {
    /// Mean analyze+compile nanoseconds per step — the quantity the
    /// sequence amortizes. Counts both full analyses and patches; `0.0`
    /// before the first step.
    pub fn plan_nanos_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            (self.analysis_nanos + self.patch_nanos) as f64 / self.steps as f64
        }
    }
}

/// A stateful handle for solving an evolving sequence of systems on one
/// [`Engine`]. Opened with [`Engine::open_sequence`]; see that method
/// and [`SequenceConfig`] for the amortization model (plan reuse, band
/// patching, warm starts, optional NNZ-sort pre-pass).
///
/// All internal state (pattern, previous solution) lives in the
/// sequence's *plan space* — the reordered row space when
/// [`SequenceConfig::reorder`] is on, the caller's space otherwise.
/// Inputs are mapped in and solutions mapped back out per step.
#[derive(Debug)]
pub struct Sequence<'e, T> {
    engine: &'e Engine,
    config: SequenceConfig,
    /// NNZ-sort permutation fixed at open (`None` without `reorder`).
    perm: Option<Vec<usize>>,
    /// The previous step's pattern, in plan space.
    pattern: Arc<CsrMatrix<T>>,
    /// Fingerprint of `pattern`.
    fingerprint: PatternFingerprint,
    /// The current plan artifacts.
    artifacts: Arc<AnalysisArtifacts>,
    /// Band-hint tiling of the current plan — the patch units: the MSID
    /// hints refined to [`SequenceConfig::patch_tile_rows`] granularity.
    /// Refreshed on recompile, deliberately kept across patches (a
    /// patched plan is still tiled by its ancestor's hints).
    hints: Vec<BandHint>,
    /// The previous step's solution, in plan space.
    prev_solution: Option<Vec<T>>,
    stats: SequenceStats,
}

/// Splits every hint wider than `tile` rows into tiles of at most `tile`
/// rows (keeping each tile's unroll), so a pattern delta dirties tiles,
/// not monolithic hints. `0` keeps the hints verbatim. The output tiles
/// rows exactly as contiguously as the input did.
fn refine_hints(hints: &[BandHint], tile: usize) -> Vec<BandHint> {
    if tile == 0 {
        return hints.to_vec();
    }
    let mut out = Vec::new();
    for h in hints {
        let mut start = h.rows.start;
        while start < h.rows.end {
            let end = (start + tile).min(h.rows.end);
            out.push(BandHint {
                rows: start..end,
                unroll: h.unroll,
            });
            start = end;
        }
    }
    out
}

/// Runs (or cache-hits) the full analysis for `pattern`, then retiles the
/// compiled plan at patch-unit granularity
/// ([`SequenceConfig::patch_tile_rows`]) when the MSID hints are coarser.
/// The retiled artifacts replace the cache entry under the same key, so
/// same-pattern lookups — the sequence's own [`PlanCache::touch`] path
/// and any concurrent solver — all agree on one plan. Per-row SpMV
/// accumulation is band-local, so retiling never changes a result bit.
///
/// [`PlanCache::touch`]: crate::PlanCache::touch
fn adopt_analysis<T: Scalar>(
    engine: &Engine,
    config: &SequenceConfig,
    pattern: &Arc<CsrMatrix<T>>,
) -> Result<(Arc<AnalysisArtifacts>, Vec<BandHint>), SolveError> {
    let artifacts = engine.cache().get_or_analyze_with(
        engine.acamar(),
        pattern.as_ref(),
        config.policy,
        engine.telemetry(),
    );
    let msid = artifacts.plan.schedule.band_hints();
    let hints = refine_hints(&msid, config.patch_tile_rows);
    if hints.len() == msid.len() {
        // Nothing was split: the analysis' own compiled plan is already
        // at patch granularity.
        return Ok((artifacts, hints));
    }
    let compiled = CompiledSpmv::compile(pattern.as_ref(), &hints)?;
    let artifacts = Arc::new(AnalysisArtifacts {
        structure: artifacts.structure.clone(),
        plan: artifacts.plan.clone(),
        compiled: Arc::new(compiled),
        // Retiling SpMV bands does not disturb the triangular plans:
        // they schedule over the same unchanged pattern.
        sptrsv: artifacts.sptrsv.clone(),
        build_cost: artifacts.build_cost,
    });
    engine.cache().insert_artifacts(
        pattern.as_ref(),
        config.policy,
        Arc::clone(&artifacts),
        engine.telemetry(),
    );
    Ok((artifacts, hints))
}

impl Engine {
    /// Opens a solve sequence anchored on `matrix`'s pattern: runs (or
    /// cache-hits) the full analysis once, applies the optional NNZ-sort
    /// pre-pass, and returns the stateful [`Sequence`] handle.
    ///
    /// # Errors
    ///
    /// [`SolveError::Invalid`] if `config.reorder` is set and `matrix` is
    /// not square (the symmetric permutation is undefined).
    pub fn open_sequence<T: Scalar>(
        &self,
        matrix: Arc<CsrMatrix<T>>,
        config: SequenceConfig,
    ) -> Result<Sequence<'_, T>, SolveError> {
        Sequence::open(self, matrix, config)
    }
}

impl<'e, T: Scalar> Sequence<'e, T> {
    fn open(
        engine: &'e Engine,
        matrix: Arc<CsrMatrix<T>>,
        config: SequenceConfig,
    ) -> Result<Sequence<'e, T>, SolveError> {
        let (perm, pattern) = if config.reorder {
            let perm = permutation_by_row_nnz(&matrix);
            let permuted = permute_symmetric(&matrix, &perm)?;
            (Some(perm), Arc::new(permuted))
        } else {
            (None, matrix)
        };
        let fingerprint = PatternFingerprint::of(&pattern);
        let started = Instant::now();
        let (artifacts, hints) = adopt_analysis(engine, &config, &pattern)?;
        let analysis_nanos = started.elapsed().as_nanos() as u64;
        Ok(Sequence {
            engine,
            config,
            perm,
            pattern,
            fingerprint,
            artifacts,
            hints,
            prev_solution: None,
            stats: SequenceStats {
                analysis_nanos,
                ..SequenceStats::default()
            },
        })
    }

    /// The sequence's configuration.
    pub fn config(&self) -> &SequenceConfig {
        &self.config
    }

    /// Running totals so far.
    pub fn stats(&self) -> SequenceStats {
        self.stats
    }

    /// Fingerprint of the current (plan-space) pattern — the sticky
    /// routing key for sequence-scoped service requests.
    pub fn fingerprint(&self) -> PatternFingerprint {
        self.fingerprint
    }

    /// The NNZ-sort permutation applied at open, if reordering is on.
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// The current plan artifacts (plan space).
    pub fn artifacts(&self) -> &Arc<AnalysisArtifacts> {
        &self.artifacts
    }

    /// Solves one step, deciding reuse vs. patch vs. recompile from the
    /// pattern delta against the previous step and gating the warm start
    /// on its residual.
    ///
    /// # Errors
    ///
    /// Any [`SolveError`] the engine reports for the job; additionally
    /// [`SolveError::Invalid`] for shape mismatches against a reordered
    /// sequence's fixed permutation. A failed step leaves the sequence
    /// usable: the plan state advances to the step's pattern, but the
    /// previous *successful* solution is retained for warm starts.
    pub fn step(&mut self, job: SequenceJob<T>) -> Result<SequenceStepReport<T>, SolveError> {
        let step_index = self.stats.steps;
        let (a, b) = self.map_in(job)?;
        let plan = self.advance_plan(&a)?;

        let (guess, warm_start) = self.gate_warm_start(&a, &b, step_index)?;

        let mut solve_job = SolveJob::new(Arc::clone(&a), b).with_policy(self.config.policy);
        if let Some(g) = guess {
            solve_job = solve_job.with_guess(g);
        }
        let mut batch = self.engine.solve_jobs(vec![solve_job]);
        self.stats.steps += 1;
        let mut report = batch.results.pop().expect("one job was submitted")?;

        self.prev_solution = Some(report.solve.solution.clone());
        if let Some(p) = &self.perm {
            report.solve.solution = unpermute_vec(&report.solve.solution, p);
        }
        Ok(SequenceStepReport {
            report,
            plan,
            warm_start,
        })
    }

    /// Maps a caller-space job into plan space (a no-op without reorder).
    fn map_in(&self, job: SequenceJob<T>) -> Result<(Arc<CsrMatrix<T>>, Vec<T>), SolveError> {
        let Some(p) = &self.perm else {
            return Ok((job.matrix, job.rhs));
        };
        if job.matrix.nrows() != p.len() || job.matrix.ncols() != p.len() {
            return Err(SolveError::Invalid(
                acamar_sparse::SparseError::DimensionMismatch {
                    expected: p.len(),
                    found: job.matrix.nrows(),
                    what: "reordered sequence matrix rows",
                },
            ));
        }
        if job.rhs.len() != p.len() {
            return Err(SolveError::Invalid(
                acamar_sparse::SparseError::DimensionMismatch {
                    expected: p.len(),
                    found: job.rhs.len(),
                    what: "reordered sequence rhs length",
                },
            ));
        }
        let a = Arc::new(permute_symmetric(&job.matrix, p)?);
        let b = permute_vec(&job.rhs, p);
        Ok((a, b))
    }

    /// Picks and installs this step's plan from the pattern delta. Also
    /// advances the sequence's pattern/fingerprint state: the fingerprint
    /// is recomputed only when the pattern actually changed, so the
    /// steady-state step never re-hashes the matrix.
    fn advance_plan(&mut self, a: &Arc<CsrMatrix<T>>) -> Result<PlanAction, SolveError> {
        // Fast path: the caller handed back the same matrix object, so
        // the O(nnz) pattern comparison is redundant.
        if Arc::ptr_eq(&self.pattern, a) {
            return self.reuse_plan(a);
        }
        let delta = PatternDelta::between(&self.pattern, a);
        match delta {
            Some(d) if d.is_empty() => self.reuse_plan(a),
            Some(d)
                if d.dirty_fraction() <= self.config.patch_max_dirty_fraction
                    && self
                        .engine
                        .cache()
                        .contains_policy(&self.fingerprint, self.config.policy) =>
            {
                // Small delta on a still-cached base: recompile only the
                // dirty bands and splice the rest.
                let started = Instant::now();
                let patched = self.artifacts.compiled.patch(a, &self.hints, &d)?;
                let patch_nanos = started.elapsed().as_nanos() as u64;
                let artifacts = Arc::new(AnalysisArtifacts {
                    structure: self.artifacts.structure.clone(),
                    plan: self.artifacts.plan.clone(),
                    compiled: Arc::new(patched),
                    // The pattern changed, so the cached level schedules
                    // are stale; drop them and let the next full analyze
                    // (or the preconditioner itself) rebuild.
                    sptrsv: None,
                    build_cost: AnalysisArtifacts::cost_model(a.nrows(), a.nnz()),
                });
                self.engine.cache().insert_artifacts(
                    a.as_ref(),
                    self.config.policy,
                    Arc::clone(&artifacts),
                    self.engine.telemetry(),
                );
                let dirty_rows = d.dirty_row_count();
                self.engine.telemetry().emit(EventKind::PlanPatched {
                    dirty_rows: dirty_rows.min(u32::MAX as usize) as u32,
                    patch_nanos,
                });
                self.engine
                    .telemetry()
                    .counter_add(Counter::PlansPatched, 1);
                self.stats.plans_patched += 1;
                self.stats.patch_nanos += patch_nanos;
                self.artifacts = artifacts;
                self.pattern = Arc::clone(a);
                self.fingerprint = PatternFingerprint::of(a.as_ref());
                Ok(PlanAction::Patched { dirty_rows })
            }
            _ => {
                // Shape change, large delta, or evicted base: full
                // analysis (cache-mediated, so identical shapes across
                // sequences still share).
                let started = Instant::now();
                let (artifacts, hints) = adopt_analysis(self.engine, &self.config, a)?;
                self.stats.analysis_nanos += started.elapsed().as_nanos() as u64;
                self.artifacts = artifacts;
                self.hints = hints;
                self.pattern = Arc::clone(a);
                self.fingerprint = PatternFingerprint::of(a.as_ref());
                self.stats.plans_recompiled += 1;
                Ok(PlanAction::Recompiled)
            }
        }
    }

    /// The same-pattern step: refresh the cached entry by its
    /// **precomputed** key — skipping the per-step pattern re-hash and
    /// re-verification, which is what makes steady-state planning O(1) —
    /// while an evicted entry still surfaces as an honest miss that goes
    /// back through the full analysis.
    fn reuse_plan(&mut self, a: &Arc<CsrMatrix<T>>) -> Result<PlanAction, SolveError> {
        let started = Instant::now();
        let touched = self.engine.cache().touch(
            &self.fingerprint,
            self.config.policy,
            self.engine.telemetry(),
        );
        self.pattern = Arc::clone(a);
        match touched {
            Some(artifacts) => {
                self.stats.analysis_nanos += started.elapsed().as_nanos() as u64;
                self.artifacts = artifacts;
                self.stats.plans_reused += 1;
                Ok(PlanAction::Reused)
            }
            None => {
                // Evicted since the last step: re-analyze through the
                // cache so the miss is counted exactly once.
                let (artifacts, hints) = adopt_analysis(self.engine, &self.config, a)?;
                self.stats.analysis_nanos += started.elapsed().as_nanos() as u64;
                self.artifacts = artifacts;
                self.hints = hints;
                self.stats.plans_recompiled += 1;
                Ok(PlanAction::Recompiled)
            }
        }
    }

    /// Applies the warm-start residual gate against this step's system.
    fn gate_warm_start(
        &mut self,
        a: &CsrMatrix<T>,
        b: &[T],
        step_index: u64,
    ) -> Result<(Option<Vec<T>>, WarmStart), SolveError> {
        if !self.config.warm_start {
            return Ok((None, WarmStart::Cold));
        }
        let Some(prev) = &self.prev_solution else {
            return Ok((None, WarmStart::Cold));
        };
        if prev.len() != a.ncols() {
            // Shape changed since the last solution: cold start.
            return Ok((None, WarmStart::Cold));
        }
        let residual = self.artifacts.warm_start_residual(a, b, prev)?;
        if residual.is_finite() && residual <= self.config.warm_start_max_residual {
            self.engine
                .telemetry()
                .emit(EventKind::WarmStartUsed { step: step_index });
            self.engine
                .telemetry()
                .counter_add(Counter::WarmStartsUsed, 1);
            self.stats.warm_starts_used += 1;
            Ok((Some(prev.clone()), WarmStart::Used { residual }))
        } else {
            self.engine
                .telemetry()
                .emit(EventKind::WarmStartRejected { step: step_index });
            self.engine
                .telemetry()
                .counter_add(Counter::WarmStartsRejected, 1);
            self.stats.warm_starts_rejected += 1;
            Ok((None, WarmStart::Rejected { residual }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::{Acamar, AcamarConfig};
    use acamar_fabric::FabricSpec;
    use acamar_sparse::generate;

    fn engine() -> Engine {
        Engine::with_workers(
            Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()),
            2,
        )
    }

    /// Drops the symmetric pair `(r, c)`/`(c, r)` from `a`, changing the
    /// pattern in exactly two rows while preserving symmetry and
    /// diagonal dominance.
    fn drop_pair(a: &CsrMatrix<f64>, r: usize, c: usize) -> CsrMatrix<f64> {
        let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..a.nrows() {
            let (rc, rv) = a.row(i);
            for (&j, &v) in rc.iter().zip(rv) {
                if (i == r && j == c) || (i == c && j == r) {
                    continue;
                }
                cols.push(j);
                vals.push(v);
            }
            row_ptr.push(cols.len());
        }
        CsrMatrix::try_from_parts(a.nrows(), a.ncols(), row_ptr, cols, vals).unwrap()
    }

    #[test]
    fn fixed_pattern_sequence_reuses_plan_and_warm_starts() {
        let engine = engine();
        let a = Arc::new(generate::poisson2d::<f64>(16, 16));
        let b = vec![1.0; 256];
        let mut seq = engine
            .open_sequence(Arc::clone(&a), SequenceConfig::default())
            .unwrap();
        let mut first_solution = None;
        for k in 0..4 {
            let step = seq
                .step(SequenceJob::new(Arc::clone(&a), b.clone()))
                .unwrap();
            assert!(step.report.solve.converged());
            assert_eq!(step.plan, PlanAction::Reused);
            match (k, step.warm_start) {
                (0, WarmStart::Cold) => {}
                (_, WarmStart::Used { residual }) => assert!(residual < 1e-3),
                other => panic!("unexpected warm-start state at step {k}: {other:?}"),
            }
            if k == 0 {
                first_solution = Some(step.report.solve.solution.clone());
            }
        }
        let stats = seq.stats();
        assert_eq!(stats.steps, 4);
        assert_eq!(stats.plans_reused, 4);
        assert_eq!(stats.plans_patched, 0);
        assert_eq!(stats.plans_recompiled, 0);
        assert_eq!(stats.warm_starts_used, 3);
        assert_eq!(stats.warm_starts_rejected, 0);
        assert!(stats.plan_nanos_per_step() > 0.0);
        // The whole sequence ran on one analysis...
        assert_eq!(engine.counters().cache.misses, 1);
        // ...and the cold first step is bitwise the plain engine solve.
        let direct = engine.solve_one(&a, &b).unwrap();
        assert_eq!(first_solution.unwrap(), direct.solve.solution);
    }

    #[test]
    fn small_pattern_delta_patches_only_dirty_bands() {
        let engine = engine();
        let a0 = Arc::new(generate::poisson2d::<f64>(16, 16));
        let b = vec![1.0; 256];
        let mut seq = engine
            .open_sequence(Arc::clone(&a0), SequenceConfig::default())
            .unwrap();
        seq.step(SequenceJob::new(Arc::clone(&a0), b.clone()))
            .unwrap();

        let a1 = Arc::new(drop_pair(&a0, 7, 8));
        let step = seq
            .step(SequenceJob::new(Arc::clone(&a1), b.clone()))
            .unwrap();
        assert!(step.report.solve.converged());
        assert_eq!(step.plan, PlanAction::Patched { dirty_rows: 2 });
        // The patch registered the new pattern without an analysis miss...
        assert_eq!(engine.counters().cache.misses, 1);
        assert!(engine.is_warm(&a1));
        // ...and the next same-pattern step hits it.
        let step = seq.step(SequenceJob::new(Arc::clone(&a1), b)).unwrap();
        assert_eq!(step.plan, PlanAction::Reused);
        let stats = seq.stats();
        assert_eq!(stats.plans_patched, 1);
        assert_eq!(stats.plans_reused, 2);
        assert!(stats.patch_nanos > 0);
    }

    #[test]
    fn large_delta_or_zero_threshold_recompiles() {
        let engine = engine();
        let a0 = Arc::new(generate::poisson2d::<f64>(16, 16));
        let b = vec![1.0; 256];
        let config = SequenceConfig::default().with_patch_max_dirty_fraction(0.0);
        let mut seq = engine.open_sequence(Arc::clone(&a0), config).unwrap();
        seq.step(SequenceJob::new(Arc::clone(&a0), b.clone()))
            .unwrap();
        let a1 = Arc::new(drop_pair(&a0, 7, 8));
        let step = seq.step(SequenceJob::new(Arc::clone(&a1), b)).unwrap();
        assert_eq!(step.plan, PlanAction::Recompiled);
        assert!(step.report.solve.converged());
        assert_eq!(engine.counters().cache.misses, 2);
        assert_eq!(seq.stats().plans_recompiled, 1);
    }

    #[test]
    fn evicted_base_plan_recompiles_instead_of_patching() {
        let engine = engine();
        engine.cache().set_capacity(1);
        let a0 = Arc::new(generate::poisson2d::<f64>(16, 16));
        let b = vec![1.0; 256];
        let mut seq = engine
            .open_sequence(Arc::clone(&a0), SequenceConfig::default())
            .unwrap();
        seq.step(SequenceJob::new(Arc::clone(&a0), b.clone()))
            .unwrap();
        // Evict the sequence's base entry by warming an unrelated pattern.
        engine
            .solve_one(&generate::poisson2d::<f64>(9, 9), &vec![1.0; 81])
            .unwrap();
        assert!(!engine.is_warm(&a0));
        // A patchable delta must now fall back to the full analysis: the
        // base plan is gone and eviction is an honest miss.
        let a1 = Arc::new(drop_pair(&a0, 7, 8));
        let step = seq.step(SequenceJob::new(Arc::clone(&a1), b)).unwrap();
        assert_eq!(step.plan, PlanAction::Recompiled);
        assert!(step.report.solve.converged());
        assert!(engine.cache().stats().evictions >= 1);
    }

    #[test]
    fn reordered_sequence_returns_solutions_in_caller_order() {
        let engine = engine();
        let a = Arc::new(generate::poisson2d::<f64>(12, 12));
        let b: Vec<f64> = (0..144).map(|i| 1.0 + (i % 7) as f64).collect();
        let config = SequenceConfig::default().with_reorder(true);
        let mut seq = engine.open_sequence(Arc::clone(&a), config).unwrap();
        assert!(seq.permutation().is_some());
        let step = seq
            .step(SequenceJob::new(Arc::clone(&a), b.clone()))
            .unwrap();
        assert!(step.report.solve.converged());
        let x = &step.report.solve.solution;
        // The returned solution solves the *original* system.
        let mut worst: f64 = 0.0;
        for (i, &bi) in b.iter().enumerate() {
            let (cols, vals) = a.row(i);
            let ax: f64 = cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum();
            worst = worst.max((ax - bi).abs());
        }
        assert!(worst < 1e-3, "residual in caller ordering: {worst}");
        // A second identical step reuses the permuted pattern's plan.
        let step = seq.step(SequenceJob::new(Arc::clone(&a), b)).unwrap();
        assert_eq!(step.plan, PlanAction::Reused);
        assert!(matches!(step.warm_start, WarmStart::Used { .. }));
    }

    #[test]
    fn replaying_a_drifting_sequence_is_bitwise_identical() {
        let run = || {
            let engine = engine();
            let a0 = Arc::new(generate::poisson2d::<f64>(16, 16));
            let mut seq = engine
                .open_sequence(Arc::clone(&a0), SequenceConfig::default())
                .unwrap();
            let mut solutions = Vec::new();
            let mut a = a0;
            for k in 0..6 {
                if k == 2 {
                    a = Arc::new(drop_pair(&a, 7, 8));
                }
                if k == 4 {
                    a = Arc::new(drop_pair(&a, 100, 101));
                }
                let b: Vec<f64> = (0..256).map(|i| 1.0 + ((i + k) % 5) as f64).collect();
                let step = seq.step(SequenceJob::new(Arc::clone(&a), b)).unwrap();
                solutions.push((step.plan, step.report.solve.solution));
            }
            (solutions, seq.stats())
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2, "replay must be bitwise identical");
        assert_eq!(t1.plans_patched, t2.plans_patched);
        assert_eq!(t1.warm_starts_used, t2.warm_starts_used);
        assert_eq!(t1.plans_patched, 2);
    }

    #[test]
    fn warm_start_gate_rejects_distant_solutions() {
        let engine = engine();
        let a = Arc::new(generate::poisson2d::<f64>(12, 12));
        let config = SequenceConfig::default().with_warm_start_max_residual(1e-12);
        let mut seq = engine.open_sequence(Arc::clone(&a), config).unwrap();
        seq.step(SequenceJob::new(Arc::clone(&a), vec![1.0; 144]))
            .unwrap();
        // A completely different RHS: the old solution's residual is far
        // above the (tiny) gate.
        let step = seq
            .step(SequenceJob::new(Arc::clone(&a), vec![-3.0; 144]))
            .unwrap();
        assert!(matches!(step.warm_start, WarmStart::Rejected { .. }));
        assert!(step.report.solve.converged());
        assert_eq!(seq.stats().warm_starts_rejected, 1);
        // Disabling warm starts keeps every step cold.
        let mut cold = engine
            .open_sequence(
                Arc::clone(&a),
                SequenceConfig::default().with_warm_start(false),
            )
            .unwrap();
        for _ in 0..2 {
            let step = cold
                .step(SequenceJob::new(Arc::clone(&a), vec![1.0; 144]))
                .unwrap();
            assert_eq!(step.warm_start, WarmStart::Cold);
        }
    }
}
