//! Sparsity-pattern fingerprints.
//!
//! Acamar's two host-side decision loops — the Matrix Structure unit and
//! the Fine-Grained Reconfiguration unit — depend only on the matrix, and
//! the unroll schedule in particular depends only on its *pattern* of
//! stored entries. Two matrices with the same `(nrows, ncols, row_ptr,
//! col_idx)` therefore share a [`FineGrainedPlan`] verbatim, which is what
//! makes a plan cache keyed on the pattern sound for the Resource Decision
//! loop. The structure decision additionally looks at values (dominance,
//! symmetry of values), so pattern-keyed reuse of the full
//! [`AnalysisArtifacts`] is an engine-level policy: batch workloads
//! (time steps, parameter sweeps, multiple right-hand sides) re-solve with
//! *identical* matrices, where the reuse is exact.
//!
//! [`FineGrainedPlan`]: acamar_core::FineGrainedPlan
//! [`AnalysisArtifacts`]: acamar_core::AnalysisArtifacts

use acamar_sparse::{CsrMatrix, Scalar};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Key identifying one CSR sparsity pattern: dimensions, entry count, and
/// a 64-bit FNV-1a digest of the `row_ptr` and `col_idx` arrays.
///
/// The dimensions and `nnz` are stored alongside the digest so that a
/// (vanishingly unlikely) hash collision between patterns of different
/// shape can never alias, and so diagnostics can report what a cache
/// entry describes without retaining the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternFingerprint {
    /// Number of rows in the fingerprinted matrix.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// FNV-1a digest of `row_ptr` then `col_idx` (little-endian `u64`s).
    pub hash: u64,
}

impl PatternFingerprint {
    /// Fingerprints the sparsity pattern of `a` (values are ignored).
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> PatternFingerprint {
        let mut h = fnv1a_words(FNV_OFFSET, a.row_ptr());
        // Separator distinguishes e.g. an empty col_idx following a long
        // row_ptr from the same words split differently.
        h = fnv1a_bytes(h, &u64::MAX.to_le_bytes());
        h = fnv1a_words(h, a.col_idx());
        PatternFingerprint {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            hash: h,
        }
    }
}

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a word slice as one contiguous little-endian byte stream.
///
/// On 64-bit little-endian targets the slice's raw bytes already *are*
/// that stream, so the whole array is digested in a single pass with no
/// per-word widening or chunking.
#[cfg(all(target_pointer_width = "64", target_endian = "little"))]
fn fnv1a_words(h: u64, words: &[usize]) -> u64 {
    // SAFETY: `usize` is plain old data with no padding; viewing the
    // slice's memory as bytes is always valid, and on this target the
    // bytes equal each word's `to_le_bytes()` concatenated.
    let bytes = unsafe {
        std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), std::mem::size_of_val(words))
    };
    fnv1a_bytes(h, bytes)
}

/// Fallback keeping the digest identical on other targets: each word is
/// widened to `u64` and hashed via its little-endian bytes.
#[cfg(not(all(target_pointer_width = "64", target_endian = "little")))]
fn fnv1a_words(mut h: u64, words: &[usize]) -> u64 {
    for &w in words {
        h = fnv1a_bytes(h, &(w as u64).to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::CooMatrix;

    fn csr(n: usize, triplets: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(i, j, v) in triplets {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn identical_patterns_share_a_fingerprint_regardless_of_values() {
        let a = csr(3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        let b = csr(3, &[(0, 0, 9.0), (1, 1, -4.0), (2, 0, 0.5)]);
        assert_eq!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
    }

    #[test]
    fn moving_an_entry_changes_the_fingerprint() {
        let a = csr(3, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let b = csr(3, &[(0, 0, 1.0), (1, 2, 1.0)]);
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
    }

    #[test]
    fn shape_is_part_of_the_key() {
        let a = csr(3, &[(0, 0, 1.0)]);
        let b = csr(4, &[(0, 0, 1.0)]);
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
        assert_eq!(PatternFingerprint::of(&a).nnz, 1);
    }

    #[test]
    fn fingerprint_is_scalar_type_independent() {
        let a = csr(3, &[(0, 0, 1.0), (2, 1, 1.0)]);
        let f32_view: CsrMatrix<f32> = a.cast();
        assert_eq!(
            PatternFingerprint::of(&a),
            PatternFingerprint::of(&f32_view)
        );
    }

    /// The original digest walked the arrays one word at a time; the
    /// byte-slice fast path must reproduce it bit for bit, or every plan
    /// cache key would silently change.
    #[test]
    fn digest_matches_the_per_word_reference() {
        fn reference<T: Scalar>(a: &CsrMatrix<T>) -> u64 {
            fn word(mut h: u64, w: u64) -> u64 {
                for byte in w.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(FNV_PRIME);
                }
                h
            }
            let mut h = FNV_OFFSET;
            for &p in a.row_ptr() {
                h = word(h, p as u64);
            }
            h = word(h, u64::MAX);
            for &c in a.col_idx() {
                h = word(h, c as u64);
            }
            h
        }
        let cases = [
            csr(1, &[]),
            csr(1, &[(0, 0, 1.0)]),
            csr(3, &[(0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0)]),
            csr(5, &[(0, 4, 1.0), (2, 2, 1.0), (4, 0, 1.0), (4, 4, 1.0)]),
        ];
        for a in &cases {
            assert_eq!(PatternFingerprint::of(a).hash, reference(a));
        }
    }

    /// Collision regression: every distinct pattern on a small grid must
    /// produce a distinct fingerprint, including pairs that agree on
    /// shape and `nnz` and differ only in where the entries sit.
    #[test]
    fn distinct_small_patterns_never_collide() {
        let mut prints = Vec::new();
        // All 2^9 sparsity patterns of a 3x3 matrix.
        for mask in 0u32..512 {
            let mut coo = CooMatrix::new(3, 3);
            for bit in 0..9 {
                if mask & (1 << bit) != 0 {
                    coo.push(bit / 3, bit % 3, 1.0).unwrap();
                }
            }
            prints.push((mask, PatternFingerprint::of(&coo.to_csr())));
        }
        for (i, (ma, fa)) in prints.iter().enumerate() {
            for (mb, fb) in &prints[i + 1..] {
                assert_ne!(fa, fb, "patterns {ma:#b} and {mb:#b} collided");
            }
        }
    }
}
