//! Sparsity-pattern fingerprints.
//!
//! Acamar's two host-side decision loops — the Matrix Structure unit and
//! the Fine-Grained Reconfiguration unit — depend only on the matrix, and
//! the unroll schedule in particular depends only on its *pattern* of
//! stored entries. Two matrices with the same `(nrows, ncols, row_ptr,
//! col_idx)` therefore share a [`FineGrainedPlan`] verbatim, which is what
//! makes a plan cache keyed on the pattern sound for the Resource Decision
//! loop. The structure decision additionally looks at values (dominance,
//! symmetry of values), so pattern-keyed reuse of the full
//! [`AnalysisArtifacts`] is an engine-level policy: batch workloads
//! (time steps, parameter sweeps, multiple right-hand sides) re-solve with
//! *identical* matrices, where the reuse is exact.
//!
//! [`FineGrainedPlan`]: acamar_core::FineGrainedPlan
//! [`AnalysisArtifacts`]: acamar_core::AnalysisArtifacts

use acamar_sparse::{CsrMatrix, Scalar};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Key identifying one CSR sparsity pattern: dimensions, entry count, and
/// a 64-bit FNV-1a digest of the `row_ptr` and `col_idx` arrays.
///
/// The dimensions and `nnz` are stored alongside the digest so that a
/// (vanishingly unlikely) hash collision between patterns of different
/// shape can never alias, and so diagnostics can report what a cache
/// entry describes without retaining the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternFingerprint {
    /// Number of rows in the fingerprinted matrix.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// FNV-1a digest of `row_ptr` then `col_idx` (little-endian `u64`s).
    pub hash: u64,
}

impl PatternFingerprint {
    /// Fingerprints the sparsity pattern of `a` (values are ignored).
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> PatternFingerprint {
        let mut h = FNV_OFFSET;
        for &p in a.row_ptr() {
            h = fnv1a_u64(h, p as u64);
        }
        // Separator distinguishes e.g. an empty col_idx following a long
        // row_ptr from the same words split differently.
        h = fnv1a_u64(h, u64::MAX);
        for &c in a.col_idx() {
            h = fnv1a_u64(h, c as u64);
        }
        PatternFingerprint {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            hash: h,
        }
    }
}

fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::CooMatrix;

    fn csr(n: usize, triplets: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(i, j, v) in triplets {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn identical_patterns_share_a_fingerprint_regardless_of_values() {
        let a = csr(3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        let b = csr(3, &[(0, 0, 9.0), (1, 1, -4.0), (2, 0, 0.5)]);
        assert_eq!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
    }

    #[test]
    fn moving_an_entry_changes_the_fingerprint() {
        let a = csr(3, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let b = csr(3, &[(0, 0, 1.0), (1, 2, 1.0)]);
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
    }

    #[test]
    fn shape_is_part_of_the_key() {
        let a = csr(3, &[(0, 0, 1.0)]);
        let b = csr(4, &[(0, 0, 1.0)]);
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
        assert_eq!(PatternFingerprint::of(&a).nnz, 1);
    }

    #[test]
    fn fingerprint_is_scalar_type_independent() {
        let a = csr(3, &[(0, 0, 1.0), (2, 1, 1.0)]);
        let f32_view: CsrMatrix<f32> = a.cast();
        assert_eq!(
            PatternFingerprint::of(&a),
            PatternFingerprint::of(&f32_view)
        );
    }
}
