//! The engine's typed per-job error.

use acamar_sparse::SparseError;
use std::error::Error;
use std::fmt;

/// Why a job failed without producing a run report.
///
/// Numerical failure (divergence after every rescue) is *not* an error —
/// it is reported through the final attempt's outcome inside an `Ok`
/// report. `SolveError` covers the cases where no trustworthy report
/// exists at all.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The job's inputs were rejected before any fabric work: non-finite
    /// right-hand side or guess, or a dimension mismatch. Deterministic —
    /// the rescue ladder never retries these.
    Invalid(SparseError),
    /// The accelerator reported an error mid-solve (e.g. a structurally
    /// defective matrix surfacing inside a solver).
    Solver(SparseError),
    /// The job's worker panicked and the panic was isolated by the
    /// engine; the rest of the batch was unaffected.
    Panicked {
        /// Best-effort panic payload description.
        message: String,
    },
    /// The job exceeded its wall-clock deadline between attempts.
    DeadlineExceeded {
        /// Milliseconds the job had actually consumed when cut off.
        elapsed_ms: u64,
        /// The configured per-job deadline, in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Invalid(e) => write!(f, "invalid job input: {e}"),
            SolveError::Solver(e) => write!(f, "solver error: {e}"),
            SolveError::Panicked { message } => write!(f, "job panicked: {message}"),
            SolveError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "job deadline exceeded: {elapsed_ms} ms elapsed, limit {limit_ms} ms"
            ),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Invalid(e) | SolveError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SolveError {
    fn from(e: SparseError) -> Self {
        match e {
            SparseError::NonFiniteValue { .. } | SparseError::DimensionMismatch { .. } => {
                SolveError::Invalid(e)
            }
            other => SolveError::Solver(other),
        }
    }
}

impl SolveError {
    /// `true` for deterministic input rejections the rescue ladder must
    /// not retry.
    pub fn is_invalid_input(&self) -> bool {
        matches!(self, SolveError::Invalid(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors_classify_as_invalid() {
        let e = SolveError::from(SparseError::NonFiniteValue {
            what: "right-hand side",
            index: 3,
        });
        assert!(e.is_invalid_input());
        assert!(e.to_string().starts_with("invalid job input"));
        let e = SolveError::from(SparseError::DimensionMismatch {
            expected: 4,
            found: 5,
            what: "right-hand side length",
        });
        assert!(e.is_invalid_input());
    }

    #[test]
    fn other_sparse_errors_classify_as_solver() {
        let e = SolveError::from(SparseError::ZeroDiagonal { row: 2 });
        assert!(!e.is_invalid_input());
        assert!(e.to_string().starts_with("solver error"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn engine_side_errors_render_their_details() {
        let p = SolveError::Panicked {
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "job panicked: boom");
        let d = SolveError::DeadlineExceeded {
            elapsed_ms: 120,
            limit_ms: 100,
        };
        assert!(d.to_string().contains("120 ms"));
        assert!(d.to_string().contains("limit 100 ms"));
        assert!(Error::source(&d).is_none());
    }
}
