//! The thread-pool-sharded batch solve engine.

use crate::cache::{CacheStats, PlanCache};
use acamar_core::{Acamar, AcamarRunReport};
use acamar_fabric::FabricRunStats;
use acamar_solvers::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One job's outcome slot, filled by whichever worker ran it.
type ResultSlot<T> = Mutex<Option<Result<AcamarRunReport<T>, SparseError>>>;

/// One `(matrix, rhs)` solve request for [`Engine::solve_jobs`].
///
/// The matrix is behind an [`Arc`] so a batch of jobs over the same
/// system shares storage instead of cloning the CSR arrays per job.
#[derive(Debug, Clone)]
pub struct SolveJob<T> {
    /// Coefficient matrix.
    pub matrix: Arc<CsrMatrix<T>>,
    /// Right-hand side.
    pub rhs: Vec<T>,
    /// Optional warm-start guess (each solver attempt restarts from it).
    pub guess: Option<Vec<T>>,
}

impl<T> SolveJob<T> {
    /// A cold-start job.
    pub fn new(matrix: Arc<CsrMatrix<T>>, rhs: Vec<T>) -> SolveJob<T> {
        SolveJob {
            matrix,
            rhs,
            guess: None,
        }
    }

    /// Sets the warm-start guess.
    pub fn with_guess(mut self, x0: Vec<T>) -> SolveJob<T> {
        self.guess = Some(x0);
        self
    }
}

/// Aggregate report of one [`Engine::solve_jobs`] / [`Engine::solve_batch`]
/// call.
#[derive(Debug, Clone)]
pub struct BatchReport<T> {
    /// Per-job outcomes, in submission order (independent of which worker
    /// ran each job).
    pub results: Vec<Result<AcamarRunReport<T>, SparseError>>,
    /// Jobs whose final attempt converged.
    pub converged: usize,
    /// Solver attempts across all jobs, indexed by
    /// [`SolverKind::index`] — the Solver Modifier's switch activity for
    /// the whole batch.
    pub attempts_by_solver: [u64; SolverKind::COUNT],
    /// Fabric statistics merged across every job
    /// ([`FabricRunStats::merge`]).
    pub stats: FabricRunStats,
    /// Cache activity attributable to this batch
    /// ([`CacheStats::since`] of the surrounding snapshots; concurrent
    /// batches on a shared engine may interleave their deltas).
    pub cache: CacheStats,
    /// Wall-clock seconds spent in the batch call.
    pub wall_seconds: f64,
}

impl<T> BatchReport<T> {
    /// Number of jobs in the batch.
    pub fn jobs(&self) -> usize {
        self.results.len()
    }

    /// `true` when every job converged.
    pub fn all_converged(&self) -> bool {
        self.converged == self.results.len()
    }

    /// Batch throughput; `0` for an empty batch.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.wall_seconds
        }
    }

    /// Total solver attempts (≥ jobs; the excess is Solver Modifier
    /// interventions plus GMRES fallbacks).
    pub fn total_attempts(&self) -> u64 {
        self.attempts_by_solver.iter().sum()
    }
}

/// Lifetime counters of one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Jobs completed since construction.
    pub jobs_completed: u64,
    /// Lifetime solver-attempt histogram, indexed by
    /// [`SolverKind::index`].
    pub attempts_by_solver: [u64; SolverKind::COUNT],
    /// Lifetime cache counters.
    pub cache: CacheStats,
}

/// A thread-pool-sharded batch solve service over one [`Acamar`]
/// instance.
///
/// The engine owns a [`PlanCache`]: every job's matrix is fingerprinted
/// and its [`AnalysisArtifacts`](acamar_core::AnalysisArtifacts) —
/// structure decision, fine-grained unroll plan, MSID schedule — are
/// built at most once per distinct sparsity pattern, then replayed
/// through [`Acamar::run_with_plan`]. Repeated solves on a warm pattern
/// skip both host-side decision loops entirely.
///
/// All methods take `&self`; the engine is `Sync` and is normally shared
/// across callers via [`Arc`]. Worker threads are scoped per batch call
/// (no idle pool lingers between calls), pull jobs from a shared atomic
/// index, and write results back by submission slot, so result order —
/// and, because [`Acamar::run_with_plan`] is deterministic, every
/// solution vector — is independent of scheduling.
///
/// ```
/// use acamar_core::{Acamar, AcamarConfig};
/// use acamar_engine::Engine;
/// use acamar_fabric::FabricSpec;
/// use acamar_sparse::generate;
///
/// let engine = Engine::new(Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()));
/// let a = generate::poisson2d::<f64>(16, 16);
/// let rhss: Vec<Vec<f64>> = (0..8).map(|k| vec![1.0 + k as f64; 256]).collect();
/// let batch = engine.solve_batch(&a, &rhss).unwrap();
/// assert!(batch.all_converged());
/// // One analysis served all eight right-hand sides:
/// assert_eq!(engine.counters().cache.misses, 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    acamar: Acamar,
    workers: usize,
    cache: PlanCache,
    jobs_completed: AtomicU64,
    attempts: [AtomicU64; SolverKind::COUNT],
}

impl Engine {
    /// An engine over `acamar` with one worker per available hardware
    /// thread.
    pub fn new(acamar: Acamar) -> Engine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine::with_workers(acamar, workers)
    }

    /// An engine with an explicit worker count (`0` is clamped to `1`).
    pub fn with_workers(acamar: Acamar, workers: usize) -> Engine {
        Engine {
            acamar,
            workers: workers.max(1),
            cache: PlanCache::new(),
            jobs_completed: AtomicU64::new(0),
            attempts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The wrapped accelerator.
    pub fn acamar(&self) -> &Acamar {
        &self.acamar
    }

    /// Worker threads used per batch call.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's structure/plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Lifetime counters: jobs completed, per-solver attempt histogram,
    /// and cache hits/misses/cycles-saved.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            attempts_by_solver: std::array::from_fn(|i| self.attempts[i].load(Ordering::Relaxed)),
            cache: self.cache.stats(),
        }
    }

    /// Solves a single system through the cache (no worker threads).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems, as [`Acamar::run`].
    pub fn solve_one<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
    ) -> Result<AcamarRunReport<T>, SparseError> {
        let artifacts = self.cache.get_or_analyze(&self.acamar, a);
        let report = self.acamar.run_with_plan(a, b, None, &artifacts)?;
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        for at in &report.attempts {
            self.attempts[at.solver.index()].fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Multi-RHS fast path: solves `A x = b` for every `b` in `rhss`,
    /// analyzing `a` exactly once (a single cache lookup serves the whole
    /// batch, so `rhss.len() - 1` lookups are hits on a cold cache).
    ///
    /// # Errors
    ///
    /// Returns the first shape error encountered; per-job numerical
    /// outcomes (including divergence) are inside the report's `results`.
    pub fn solve_batch<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        rhss: &[Vec<T>],
    ) -> Result<BatchReport<T>, SparseError> {
        let matrix = Arc::new(a.clone());
        let jobs: Vec<SolveJob<T>> = rhss
            .iter()
            .map(|b| SolveJob::new(Arc::clone(&matrix), b.clone()))
            .collect();
        Ok(self.solve_jobs(jobs))
    }

    /// Runs `jobs` across the worker pool and aggregates a
    /// [`BatchReport`].
    ///
    /// Jobs are pulled from a shared queue (no static sharding, so a few
    /// slow systems cannot idle the other workers) and results land in
    /// submission order. Shape errors are reported per job; they do not
    /// abort the batch.
    pub fn solve_jobs<T: Scalar>(&self, jobs: Vec<SolveJob<T>>) -> BatchReport<T> {
        let start = Instant::now();
        let cache_before = self.cache.stats();
        let n = jobs.len();
        let slots: Vec<ResultSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let jobs = &jobs;
        let slots_ref = &slots;
        let next_ref = &next;

        let workers = self.workers.min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = &jobs[i];
                    let artifacts = self.cache.get_or_analyze(&self.acamar, &job.matrix);
                    let result = self.acamar.run_with_plan(
                        &job.matrix,
                        &job.rhs,
                        job.guess.as_deref(),
                        &artifacts,
                    );
                    if let Ok(report) = &result {
                        for at in &report.attempts {
                            self.attempts[at.solver.index()].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    *slots_ref[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });

        let results: Vec<Result<AcamarRunReport<T>, SparseError>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot is filled before the scope ends")
            })
            .collect();

        let mut attempts_by_solver = [0u64; SolverKind::COUNT];
        let mut stats = FabricRunStats::empty();
        let mut converged = 0usize;
        for report in results.iter().flatten() {
            if report.converged() {
                converged += 1;
            }
            for at in &report.attempts {
                attempts_by_solver[at.solver.index()] += 1;
            }
            stats = stats.merge(&report.stats);
        }

        BatchReport {
            results,
            converged,
            attempts_by_solver,
            stats,
            cache: self.cache.stats().since(&cache_before),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::AcamarConfig;
    use acamar_fabric::FabricSpec;
    use acamar_solvers::ConvergenceCriteria;
    use acamar_sparse::generate::{self, RowDistribution};

    fn engine(workers: usize) -> Engine {
        let cfg = AcamarConfig::paper()
            .with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
        Engine::with_workers(Acamar::new(FabricSpec::alveo_u55c(), cfg), workers)
    }

    #[test]
    fn solve_one_matches_direct_run() {
        let e = engine(1);
        let a = generate::poisson2d::<f64>(12, 12);
        let b = vec![1.0_f64; 144];
        let via_engine = e.solve_one(&a, &b).unwrap();
        let direct = e.acamar().run(&a, &b).unwrap();
        assert_eq!(via_engine.solve.solution, direct.solve.solution);
        assert_eq!(via_engine.attempts.len(), direct.attempts.len());
        assert_eq!(e.counters().jobs_completed, 1);
    }

    #[test]
    fn solve_batch_analyzes_once() {
        let e = engine(4);
        let a = generate::poisson2d::<f64>(10, 10);
        let rhss: Vec<Vec<f64>> = (0..9).map(|k| vec![(k + 1) as f64; 100]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        assert_eq!(batch.jobs(), 9);
        assert!(batch.all_converged());
        assert_eq!(batch.cache.misses, 1);
        assert_eq!(batch.cache.hits, 8);
        assert!(batch.cache.plan_build_cycles_saved > 0);
        assert!(batch.jobs_per_second() > 0.0);
    }

    #[test]
    fn batch_histogram_counts_every_attempt() {
        let e = engine(2);
        let a = generate::diagonally_dominant::<f64>(
            64,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            3,
        );
        let rhss: Vec<Vec<f64>> = (0..4).map(|k| vec![1.0 + k as f64; 64]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        // Dominant matrix: Jacobi first try, every time.
        assert_eq!(batch.attempts_by_solver[SolverKind::Jacobi.index()], 4);
        assert_eq!(batch.total_attempts(), 4);
        assert_eq!(e.counters().attempts_by_solver, batch.attempts_by_solver);
    }

    #[test]
    fn shape_errors_fail_their_job_without_aborting_the_batch() {
        let e = engine(2);
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let jobs = vec![
            SolveJob::new(Arc::clone(&a), vec![1.0_f64; 64]),
            SolveJob::new(Arc::clone(&a), vec![1.0_f64; 63]), // wrong length
            SolveJob::new(Arc::clone(&a), vec![2.0_f64; 64]),
        ];
        let batch = e.solve_jobs(jobs);
        assert!(batch.results[0].is_ok());
        assert!(batch.results[1].is_err());
        assert!(batch.results[2].is_ok());
        assert_eq!(batch.converged, 2);
        assert!(!batch.all_converged());
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let e = engine(3);
        let batch = e.solve_jobs(Vec::<SolveJob<f64>>::new());
        assert_eq!(batch.jobs(), 0);
        assert_eq!(batch.total_attempts(), 0);
        assert_eq!(batch.jobs_per_second(), 0.0);
        assert!(batch.all_converged());
    }

    #[test]
    fn merged_stats_accumulate_across_jobs() {
        let e = engine(2);
        let a = generate::poisson2d::<f64>(10, 10);
        let one = e.solve_one(&a, &vec![1.0_f64; 100]).unwrap();
        let batch = e
            .solve_batch(&a, &[vec![1.0_f64; 100], vec![2.0_f64; 100]])
            .unwrap();
        assert!(batch.stats.cycles.total() >= one.stats.cycles.total());
        assert!(batch.stats.useful_flops >= one.stats.useful_flops);
        assert!(batch.stats.peak_area_mm2 >= one.stats.peak_area_mm2);
    }

    #[test]
    fn warm_guess_is_forwarded() {
        let e = engine(1);
        let a = Arc::new(generate::poisson2d::<f64>(10, 10));
        let b = vec![1.0_f64; 100];
        let cold = e.solve_jobs(vec![SolveJob::new(Arc::clone(&a), b.clone())]);
        let x = cold.results[0].as_ref().unwrap().solve.solution.clone();
        let warm = e.solve_jobs(vec![SolveJob::new(Arc::clone(&a), b).with_guess(x)]);
        let w = warm.results[0].as_ref().unwrap();
        assert!(w.converged());
        let c = cold.results[0].as_ref().unwrap();
        assert!(w.solve.iterations <= c.solve.iterations);
    }
}
