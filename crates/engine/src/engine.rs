//! The thread-pool-sharded batch solve engine.

use crate::cache::{CacheStats, PlanCache};
use crate::error::SolveError;
use crate::fingerprint::PatternFingerprint;
use crate::robustness::{JobDisposition, RobustnessReport};
use acamar_core::{
    Acamar, AcamarRunReport, AnalysisArtifacts, RescuePolicy, RunOptions, SolveAttempt,
};
use acamar_fabric::FabricRunStats;
use acamar_faultline::{FaultContext, FaultInjector, InjectedPanic, WorkerDisruption};
use acamar_solvers::{SolverKind, WorkspaceHandle};
use acamar_sparse::{CsrMatrix, DeterminismPolicy, Scalar};
use acamar_telemetry::export::PrometheusWriter;
use acamar_telemetry::{Counter, EventKind, FaultResolution, Recorder, Span, TelemetrySink};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One job's outcome slot, filled by whichever worker ran it.
type ResultSlot<T> = Mutex<Option<JobOutcome<T>>>;

/// One `(matrix, rhs)` solve request for [`Engine::solve_jobs`].
///
/// The matrix is behind an [`Arc`] so a batch of jobs over the same
/// system shares storage instead of cloning the CSR arrays per job.
#[derive(Debug, Clone)]
pub struct SolveJob<T> {
    /// Coefficient matrix.
    pub matrix: Arc<CsrMatrix<T>>,
    /// Right-hand side.
    pub rhs: Vec<T>,
    /// Optional warm-start guess (each solver attempt restarts from it).
    pub guess: Option<Vec<T>>,
    /// Determinism tier for this job's host arithmetic
    /// (see [`DeterminismPolicy`]; defaults to `Deterministic`).
    pub policy: DeterminismPolicy,
}

impl<T> SolveJob<T> {
    /// A cold-start job.
    pub fn new(matrix: Arc<CsrMatrix<T>>, rhs: Vec<T>) -> SolveJob<T> {
        SolveJob {
            matrix,
            rhs,
            guess: None,
            policy: DeterminismPolicy::Deterministic,
        }
    }

    /// Sets the warm-start guess.
    pub fn with_guess(mut self, x0: Vec<T>) -> SolveJob<T> {
        self.guess = Some(x0);
        self
    }

    /// Sets the determinism tier.
    pub fn with_policy(mut self, policy: DeterminismPolicy) -> SolveJob<T> {
        self.policy = policy;
        self
    }
}

/// Engine-level hardening knobs, all off by default (a default engine
/// behaves exactly like the pre-hardening one on healthy inputs).
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// Rescue ladder climbed when a job's primary run fails (worker
    /// panic, divergence after the Solver Modifier's own switches, or a
    /// solver error). `None` disables engine-level rescue entirely.
    pub rescue: Option<RescuePolicy>,
    /// Per-job wall-clock deadline, checked between attempts; a job over
    /// it fails with [`SolveError::DeadlineExceeded`] instead of climbing
    /// further.
    pub deadline: Option<Duration>,
    /// Per-job loop-iteration budget across all attempts; once spent, no
    /// further rescue rungs are climbed.
    pub iteration_budget: Option<usize>,
}

impl ResilienceConfig {
    /// The full ladder with default backoff, no deadline, no budget.
    pub fn hardened() -> ResilienceConfig {
        ResilienceConfig {
            rescue: Some(RescuePolicy::default()),
            ..ResilienceConfig::default()
        }
    }

    /// Sets the per-job wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ResilienceConfig {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-job iteration budget.
    pub fn with_iteration_budget(mut self, budget: usize) -> ResilienceConfig {
        self.iteration_budget = Some(budget);
        self
    }
}

/// Everything one job's execution produced: its result plus the
/// engine-level telemetry the [`RobustnessReport`] is assembled from.
#[derive(Debug)]
struct JobOutcome<T> {
    result: Result<AcamarRunReport<T>, SolveError>,
    rungs: usize,
    panics: u64,
    deadline_missed: bool,
}

/// Aggregate report of one [`Engine::solve_jobs`] / [`Engine::solve_batch`]
/// call.
#[derive(Debug, Clone)]
pub struct BatchReport<T> {
    /// Per-job outcomes, in submission order (independent of which worker
    /// ran each job). A job that climbed rescue rungs reports the merged
    /// attempt list and fabric stats of *every* attempt.
    pub results: Vec<Result<AcamarRunReport<T>, SolveError>>,
    /// Jobs whose final attempt converged.
    pub converged: usize,
    /// Solver attempts across all jobs, indexed by
    /// [`SolverKind::index`] — the Solver Modifier's switch activity for
    /// the whole batch.
    pub attempts_by_solver: [u64; SolverKind::COUNT],
    /// Fabric statistics merged across every job
    /// ([`FabricRunStats::merge`]).
    pub stats: FabricRunStats,
    /// Cache activity attributable to this batch
    /// ([`CacheStats::since`] of the surrounding snapshots; concurrent
    /// batches on a shared engine may interleave their deltas).
    pub cache: CacheStats,
    /// Fault/rescue accounting for the batch. All-zero tallies when no
    /// fault injector is installed; the rescue-depth histogram, panic and
    /// deadline counters describe real engine activity either way.
    pub robustness: RobustnessReport,
    /// Nanoseconds pool workers spent blocked waiting for work during this
    /// batch (accrued when a wait ends, so a worker that never woke again
    /// during the batch is not counted — this measures observed hand-off
    /// gaps, not end-of-batch slack).
    pub pool_idle_nanos: u64,
    /// Wall-clock seconds spent in the batch call.
    pub wall_seconds: f64,
}

impl<T> BatchReport<T> {
    /// Number of jobs in the batch.
    pub fn jobs(&self) -> usize {
        self.results.len()
    }

    /// `true` when every job converged.
    pub fn all_converged(&self) -> bool {
        self.converged == self.results.len()
    }

    /// Batch throughput; `0` for an empty batch.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.wall_seconds
        }
    }

    /// Total solver attempts (≥ jobs; the excess is Solver Modifier
    /// interventions, GMRES fallbacks, and rescue rungs).
    pub fn total_attempts(&self) -> u64 {
        self.attempts_by_solver.iter().sum()
    }

    /// Renders the batch as a Prometheus text-format snapshot.
    ///
    /// Metric names reuse the [`Counter`] vocabulary so a scrape of this
    /// snapshot and a scrape of a live
    /// [`RingRecorder`](acamar_telemetry::RingRecorder) agree on naming —
    /// both are fed from the same engine accounting (cache statistics,
    /// fabric run statistics, the robustness ledger).
    pub fn prometheus_text(&self) -> String {
        let mut w = PrometheusWriter::new();
        let c = |c: Counter| (c.metric_name(), c.help());
        let (n, h) = c(Counter::JobsCompleted);
        w.counter(n, h, self.jobs() as u64);
        let (n, h) = c(Counter::CacheHits);
        w.counter(n, h, self.cache.hits);
        let (n, h) = c(Counter::CacheMisses);
        w.counter(n, h, self.cache.misses);
        let (n, h) = c(Counter::CacheCollisions);
        w.counter(n, h, self.cache.collisions);
        let (n, h) = c(Counter::AnalysisNanos);
        w.counter(n, h, self.cache.analysis_nanos);
        let (n, h) = c(Counter::PoolIdleNanos);
        w.counter(n, h, self.pool_idle_nanos);
        let (n, h) = c(Counter::SpmvReconfigs);
        w.counter(n, h, self.stats.spmv_reconfig_events as u64);
        let (n, h) = c(Counter::ReconfigAborts);
        w.counter(n, h, self.stats.reconfig_aborts as u64);
        let (n, h) = c(Counter::FaultsInjected);
        w.counter(n, h, self.robustness.injected_total());
        let (n, h) = c(Counter::FaultsDetected);
        let detected = self.robustness.tallies.iter().map(|t| t.detected).sum();
        w.counter(n, h, detected);
        let (n, h) = c(Counter::FaultsRecovered);
        let recovered = self.robustness.tallies.iter().map(|t| t.recovered).sum();
        w.counter(n, h, recovered);
        let (n, h) = c(Counter::FaultsExhausted);
        let exhausted = self.robustness.tallies.iter().map(|t| t.exhausted).sum();
        w.counter(n, h, exhausted);
        let (n, h) = c(Counter::RescueRungs);
        let rungs = self
            .robustness
            .rescue_depths
            .iter()
            .enumerate()
            .map(|(d, &jobs)| d as u64 * jobs)
            .sum();
        w.counter(n, h, rungs);
        w.counter(
            "acamar_jobs_converged_total",
            "Jobs whose final attempt converged",
            self.converged as u64,
        );
        w.counter(
            "acamar_solver_attempts_total",
            "Solver attempts across all jobs",
            self.total_attempts(),
        );
        w.counter(
            "acamar_panics_caught_total",
            "Worker panics caught and isolated",
            self.robustness.panics_caught,
        );
        w.counter(
            "acamar_deadline_misses_total",
            "Jobs cut off by their wall-clock deadline",
            self.robustness.deadline_misses,
        );
        w.gauge(
            "acamar_batch_wall_seconds",
            "Wall-clock seconds spent in the batch call",
            self.wall_seconds,
        );
        w.gauge(
            "acamar_batch_jobs_per_second",
            "Batch throughput",
            self.jobs_per_second(),
        );
        w.finish()
    }
}

/// Lifetime counters of one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Jobs completed since construction.
    pub jobs_completed: u64,
    /// Lifetime solver-attempt histogram, indexed by
    /// [`SolverKind::index`].
    pub attempts_by_solver: [u64; SolverKind::COUNT],
    /// Lifetime cache counters.
    pub cache: CacheStats,
    /// Lifetime nanoseconds pool workers spent blocked waiting for work
    /// (accrued when each wait ends).
    pub pool_idle_nanos: u64,
}

/// Work unit shipped to a pool worker: a boxed closure run with the
/// worker's thread-resident scratch state.
type Task = Box<dyn FnOnce(&mut WorkerScratch) + Send + 'static>;

/// State owned by one worker thread for the engine's whole lifetime —
/// most importantly the buffer pool its solves recycle scratch vectors
/// through, which is what makes warm solves allocation-free.
#[derive(Debug, Default)]
struct WorkerScratch {
    workspace: WorkspaceHandle,
}

/// The engine's persistent worker pool: threads are spawned once at
/// engine construction, fed batch tasks over a channel, and joined on
/// drop. No per-batch spawn cost, no detached threads.
#[derive(Debug)]
struct WorkerPool {
    /// `Some` until drop; taking it hangs up the channel so workers exit.
    sender: Option<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize, idle_nanos: Arc<AtomicU64>) -> WorkerPool {
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver: Arc<Mutex<Receiver<Task>>> = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let idle_nanos = Arc::clone(&idle_nanos);
                std::thread::Builder::new()
                    .name(format!("acamar-worker-{i}"))
                    .spawn(move || {
                        let mut scratch = WorkerScratch::default();
                        loop {
                            // Hold the receiver lock only for the dequeue,
                            // never across task execution. The blocked
                            // interval is charged to the shared idle clock
                            // once the wait ends.
                            let task = {
                                let rx = receiver.lock().unwrap_or_else(|p| p.into_inner());
                                let waited = Instant::now();
                                let task = rx.recv();
                                idle_nanos.fetch_add(
                                    waited.elapsed().as_nanos() as u64,
                                    Ordering::Relaxed,
                                );
                                task
                            };
                            match task {
                                Ok(task) => task(&mut scratch),
                                Err(_) => break, // channel hung up: engine dropped
                            }
                        }
                    })
                    .expect("failed to spawn engine worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    fn submit(&self, task: Task) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(task)
            .expect("pool workers live until drop");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Counts one batch's outstanding runner tasks; the submitting thread
/// blocks until every runner has finished.
#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch poisoned");
        }
    }
}

/// Shared state of one in-flight batch: the jobs, their result slots,
/// the shared intake index, and the completion latch.
struct BatchCtx<T> {
    jobs: Vec<SolveJob<T>>,
    slots: Vec<ResultSlot<T>>,
    next: AtomicUsize,
    latch: Latch,
}

/// One runner task's work loop: drain jobs off the batch's shared index
/// until none remain. Runner tasks never wait on other tasks, so
/// concurrent batches on a shared engine cannot deadlock the pool.
fn drain_batch<T: Scalar>(inner: &EngineInner, ctx: &BatchCtx<T>, workspace: &WorkspaceHandle) {
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.jobs.len() {
            break;
        }
        let job = &ctx.jobs[i];
        let outcome = inner.run_job(
            i,
            &job.matrix,
            &job.rhs,
            job.guess.as_deref(),
            job.policy,
            workspace,
        );
        inner.account_job(&outcome);
        *ctx.slots[i].lock().expect("result slot poisoned") = Some(outcome);
    }
}

/// A thread-pool-sharded batch solve service over one [`Acamar`]
/// instance.
///
/// The engine owns a [`PlanCache`]: every job's matrix is fingerprinted
/// and its [`AnalysisArtifacts`](acamar_core::AnalysisArtifacts) —
/// structure decision, fine-grained unroll plan, MSID schedule — are
/// built at most once per distinct sparsity pattern, then replayed
/// through [`Acamar::run_with_plan`]. Repeated solves on a warm pattern
/// skip both host-side decision loops entirely.
///
/// All methods take `&self`; the engine is `Sync` and is normally shared
/// across callers via [`Arc`]. Worker threads are spawned once at
/// construction and live until the engine is dropped (which joins them);
/// each keeps a thread-resident buffer pool, so warm solves recycle
/// their scratch vectors instead of heap-allocating. Batch jobs are
/// pulled from a shared atomic index and results land by submission
/// slot, so result order — and, because [`Acamar::run_with_plan`] is
/// deterministic and pooled buffers are re-zeroed on reuse, every
/// solution vector — is independent of scheduling and of pool warmth.
///
/// # Hardening
///
/// Every job runs inside [`catch_unwind`]: a panicking worker fails only
/// its own job ([`SolveError::Panicked`]) and the rest of the batch
/// completes normally. [`Engine::with_resilience`] adds per-job
/// deadlines, iteration budgets, and the [`RescuePolicy`] ladder
/// (retry → next solver → preconditioned → GMRES, with geometric budget
/// backoff). [`Engine::with_fault_injection`] installs a deterministic
/// [`FaultInjector`] whose injections are reconciled into the batch's
/// [`RobustnessReport`]. Input validation is always on: a non-finite
/// right-hand side or guess, or a dimension mismatch, fails the job with
/// [`SolveError::Invalid`] before any fabric work, and is never retried.
///
/// ```
/// use acamar_core::{Acamar, AcamarConfig};
/// use acamar_engine::Engine;
/// use acamar_fabric::FabricSpec;
/// use acamar_sparse::generate;
///
/// let engine = Engine::new(Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()));
/// let a = generate::poisson2d::<f64>(16, 16);
/// let rhss: Vec<Vec<f64>> = (0..8).map(|k| vec![1.0 + k as f64; 256]).collect();
/// let batch = engine.solve_batch(&a, &rhss).unwrap();
/// assert!(batch.all_converged());
/// // One analysis served all eight right-hand sides:
/// assert_eq!(engine.counters().cache.misses, 1);
/// // No injector installed: the robustness ledger is clean.
/// assert_eq!(batch.robustness.injected_total(), 0);
/// ```
#[derive(Debug)]
pub struct Engine {
    inner: Arc<EngineInner>,
    pool: WorkerPool,
}

/// The engine's shared state: everything worker tasks need, behind one
/// [`Arc`] so batch tasks (which must be `'static` for the pool channel)
/// can hold it without borrowing the engine.
#[derive(Debug)]
struct EngineInner {
    acamar: Acamar,
    workers: usize,
    cache: PlanCache,
    resilience: ResilienceConfig,
    injector: Option<Arc<FaultInjector>>,
    /// Engine-level sink; per-job copies are made with the job id routed
    /// in. Disabled (a single branch per site) until a recorder is
    /// installed via [`Engine::with_recorder`].
    telemetry: TelemetrySink,
    /// Shared with the worker pool's threads, which charge their blocked
    /// `recv` intervals here.
    pool_idle: Arc<AtomicU64>,
    jobs_completed: AtomicU64,
    attempts: [AtomicU64; SolverKind::COUNT],
    /// Buffer pool for [`Engine::solve_one`], which runs on the calling
    /// thread: repeated single solves recycle scratch vectors just like
    /// pool workers do.
    solo_workspace: WorkspaceHandle,
}

impl Engine {
    /// An engine over `acamar` with one worker per available hardware
    /// thread.
    pub fn new(acamar: Acamar) -> Engine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine::with_workers(acamar, workers)
    }

    /// An engine with an explicit worker count (`0` is clamped to `1`).
    /// The worker threads are spawned here and live until the engine is
    /// dropped.
    pub fn with_workers(acamar: Acamar, workers: usize) -> Engine {
        let workers = workers.max(1);
        let pool_idle = Arc::new(AtomicU64::new(0));
        Engine {
            inner: Arc::new(EngineInner {
                acamar,
                workers,
                cache: PlanCache::new(),
                resilience: ResilienceConfig::default(),
                injector: None,
                telemetry: TelemetrySink::disabled(),
                pool_idle: Arc::clone(&pool_idle),
                jobs_completed: AtomicU64::new(0),
                attempts: std::array::from_fn(|_| AtomicU64::new(0)),
                solo_workspace: WorkspaceHandle::new(),
            }),
            pool: WorkerPool::new(workers, pool_idle),
        }
    }

    /// Exclusive access to the shared state for the builder methods.
    ///
    /// Holding `self` by value means no new [`Arc`] clones can appear
    /// (cloning requires a `&self` batch call), but a worker may still be
    /// releasing the clone a just-finished batch task held — its latch
    /// counts down before the task closure (and the `Arc` it captured) is
    /// dropped — so spin the handful of instructions until it lets go.
    fn inner_mut(&mut self) -> &mut EngineInner {
        while Arc::strong_count(&self.inner) > 1 {
            std::thread::yield_now();
        }
        Arc::get_mut(&mut self.inner).expect("no other engine references can appear")
    }

    /// Sets the engine's hardening configuration (rescue ladder,
    /// deadlines, iteration budgets).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Engine {
        self.inner_mut().resilience = resilience;
        self
    }

    /// Installs a deterministic fault injector: its seams fire inside
    /// every subsequent job, and each batch report reconciles the
    /// injector's ledger into its [`RobustnessReport`]. Also silences the
    /// default panic hook for injected panics so chaos runs don't spam
    /// stderr.
    ///
    /// Each batch drains the ledger; sharing one injector across
    /// concurrently running batches mixes their events.
    pub fn with_fault_injection(mut self, injector: Arc<FaultInjector>) -> Engine {
        acamar_faultline::silence_injected_panics();
        self.inner_mut().injector = Some(injector);
        self
    }

    /// Installs a telemetry recorder: every subsequent job emits its span,
    /// cache, attempt, reconfiguration, and fault events into it, and the
    /// engine folds its internal statistics (plan-cache analysis time,
    /// pool idle time) into the recorder's counters.
    ///
    /// Telemetry is purely observational — solutions, iteration counts,
    /// and modeled cycle charges are bitwise identical with or without a
    /// recorder. Installing a
    /// [`NullRecorder`](acamar_telemetry::NullRecorder) is exactly
    /// equivalent to installing nothing: the sink collapses it away and
    /// every instrumentation site stays a single branch.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Engine {
        let stride = self.inner.telemetry.residual_stride();
        self.inner_mut().telemetry = TelemetrySink::new(recorder).with_residual_stride(stride);
        self
    }

    /// Sets the residual sampling stride: solver loops emit one
    /// [`EventKind::Residual`] event every `stride` iterations (`0`, the
    /// default, disables the stream — it is the highest-volume signal, so
    /// it is opt-in even with a recorder installed).
    pub fn with_residual_stride(mut self, stride: u32) -> Engine {
        let inner = self.inner_mut();
        inner.telemetry = inner.telemetry.with_residual_stride(stride);
        self
    }

    /// A fresh engine with this engine's configuration — same accelerator
    /// model, worker count, resilience policy, fault injector, and
    /// telemetry sink — but a brand-new worker pool and a cold plan
    /// cache.
    ///
    /// This is the shard-restart hook for the serving layer's supervisor:
    /// when a dispatcher thread dies, its engine (whose pool or cache may
    /// be entangled with the crash) is abandoned in place and replaced
    /// wholesale. The injector `Arc` is *shared*, not cloned, so the
    /// chaos ledger keeps a single ground truth across the restart.
    pub fn respawn(&self) -> Engine {
        let pool_idle = Arc::new(AtomicU64::new(0));
        Engine {
            inner: Arc::new(EngineInner {
                acamar: self.inner.acamar.clone(),
                workers: self.inner.workers,
                cache: PlanCache::new(),
                resilience: self.inner.resilience.clone(),
                injector: self.inner.injector.clone(),
                telemetry: self.inner.telemetry.clone(),
                pool_idle: Arc::clone(&pool_idle),
                jobs_completed: AtomicU64::new(0),
                attempts: std::array::from_fn(|_| AtomicU64::new(0)),
                solo_workspace: WorkspaceHandle::new(),
            }),
            pool: WorkerPool::new(self.inner.workers, pool_idle),
        }
    }

    /// The wrapped accelerator.
    pub fn acamar(&self) -> &Acamar {
        &self.inner.acamar
    }

    /// Worker threads in the persistent pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The engine's structure/plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// Whether this engine already holds a compiled plan for `a`'s
    /// sparsity pattern — i.e. whether a solve of `a` would be a warm
    /// cache hit. Does not perturb the cache's hit/miss accounting.
    pub fn is_warm<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        self.inner.cache.contains(&PatternFingerprint::of(a))
    }

    /// The engine's hardening configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.inner.resilience
    }

    /// The installed fault injector, if any.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.injector.as_ref()
    }

    /// The engine-level telemetry sink (disabled until
    /// [`Engine::with_recorder`]).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.inner.telemetry
    }

    /// Lifetime counters: jobs completed, per-solver attempt histogram,
    /// and cache hits/misses/cycles-saved.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            jobs_completed: self.inner.jobs_completed.load(Ordering::Relaxed),
            attempts_by_solver: std::array::from_fn(|i| {
                self.inner.attempts[i].load(Ordering::Relaxed)
            }),
            cache: self.inner.cache.stats(),
            pool_idle_nanos: self.inner.pool_idle.load(Ordering::Relaxed),
        }
    }

    /// Solves a single system through the cache (no worker threads) with
    /// the same hardening as a batch job.
    ///
    /// # Errors
    ///
    /// [`SolveError::Invalid`] for rejected inputs, [`SolveError::Solver`]
    /// for mid-solve accelerator errors, [`SolveError::Panicked`] /
    /// [`SolveError::DeadlineExceeded`] from the hardening layer.
    pub fn solve_one<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
    ) -> Result<AcamarRunReport<T>, SolveError> {
        let outcome = self.inner.run_job(
            0,
            a,
            b,
            None,
            DeterminismPolicy::Deterministic,
            &self.inner.solo_workspace,
        );
        self.inner.account_job(&outcome);
        outcome.result
    }

    /// Multi-RHS fast path: solves `A x = b` for every `b` in `rhss`,
    /// analyzing `a` exactly once (a single cache lookup serves the whole
    /// batch, so `rhss.len() - 1` lookups are hits on a cold cache).
    ///
    /// # Errors
    ///
    /// Never fails at the batch level; per-job outcomes (including
    /// rejected inputs and divergence) are inside the report's `results`.
    /// The `Result` return is kept for signature stability.
    pub fn solve_batch<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        rhss: &[Vec<T>],
    ) -> Result<BatchReport<T>, SolveError> {
        let matrix = Arc::new(a.clone());
        let jobs: Vec<SolveJob<T>> = rhss
            .iter()
            .map(|b| SolveJob::new(Arc::clone(&matrix), b.clone()))
            .collect();
        Ok(self.solve_jobs(jobs))
    }

    /// Runs `jobs` across the worker pool and aggregates a
    /// [`BatchReport`].
    ///
    /// Jobs are pulled from a shared queue (no static sharding, so a few
    /// slow systems cannot idle the other workers) and results land in
    /// submission order. Per-job failures — rejected inputs, solver
    /// errors, isolated panics, missed deadlines — are reported in their
    /// own slot; nothing aborts the batch.
    pub fn solve_jobs<T: Scalar>(&self, jobs: Vec<SolveJob<T>>) -> BatchReport<T> {
        let start = Instant::now();
        let cache_before = self.inner.cache.stats();
        let idle_before = self.inner.pool_idle.load(Ordering::Relaxed);
        let n = jobs.len();
        let runners = self.inner.workers.min(n);
        let ctx = Arc::new(BatchCtx {
            jobs,
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            latch: Latch::new(runners),
        });

        // One runner task per participating worker; each drains the shared
        // index until the batch is empty, then counts down the latch. The
        // submitting thread blocks here, not in the pool, so concurrent
        // batches interleave their runners without deadlock.
        for _ in 0..runners {
            let inner = Arc::clone(&self.inner);
            let ctx = Arc::clone(&ctx);
            self.pool.submit(Box::new(move |scratch| {
                drain_batch(&inner, &ctx, &scratch.workspace);
                ctx.latch.count_down();
            }));
        }
        ctx.latch.wait();

        let mut results = Vec::with_capacity(n);
        let mut dispositions = Vec::with_capacity(n);
        let mut panics_caught = 0u64;
        let mut deadline_misses = 0u64;
        // Drain by lock-and-take: a worker may still hold its `ctx` clone
        // for an instant after the latch fires, so the `Arc` cannot be
        // unwrapped here.
        for slot in &ctx.slots {
            let outcome = slot
                .lock()
                .expect("result slot poisoned")
                .take()
                .expect("every slot is filled before the latch opens");
            dispositions.push(JobDisposition {
                converged: matches!(&outcome.result, Ok(r) if r.converged()),
                rungs: outcome.rungs,
            });
            panics_caught += outcome.panics;
            deadline_misses += u64::from(outcome.deadline_missed);
            results.push(outcome.result);
        }

        let events = match &self.inner.injector {
            Some(inj) => inj.take_events(),
            None => Vec::new(),
        };
        let mut robustness = RobustnessReport::reconcile(&events, &dispositions);
        robustness.panics_caught = panics_caught;
        robustness.deadline_misses = deadline_misses;

        // Join the injector's ledger into the trace: each injected fault
        // is re-emitted against its job together with the resolution the
        // reconciliation assigned it, using the same disposition logic as
        // `RobustnessReport::reconcile` so trace and ledger always agree.
        if self.inner.telemetry.enabled() {
            for e in &events {
                let sink = self.inner.telemetry.with_job(e.job);
                sink.emit(e.telemetry_kind());
                sink.counter_add(Counter::FaultsInjected, 1);
                let resolution = match dispositions.get(e.job as usize) {
                    Some(j) if j.converged && j.rungs == 0 => FaultResolution::Detected,
                    Some(j) if j.converged => FaultResolution::Recovered,
                    _ => FaultResolution::Exhausted,
                };
                sink.emit(EventKind::FaultOutcome {
                    category: e.category.index().min(u8::MAX as usize) as u8,
                    resolution,
                });
                sink.counter_add(
                    match resolution {
                        FaultResolution::Detected => Counter::FaultsDetected,
                        FaultResolution::Recovered => Counter::FaultsRecovered,
                        FaultResolution::Exhausted => Counter::FaultsExhausted,
                    },
                    1,
                );
            }
        }

        let mut attempts_by_solver = [0u64; SolverKind::COUNT];
        let mut stats = FabricRunStats::empty();
        let mut converged = 0usize;
        for report in results.iter().flatten() {
            if report.converged() {
                converged += 1;
            }
            for at in &report.attempts {
                attempts_by_solver[at.solver.index()] += 1;
            }
            stats = stats.merge(&report.stats);
        }

        let pool_idle_nanos = self
            .inner
            .pool_idle
            .load(Ordering::Relaxed)
            .saturating_sub(idle_before);
        self.inner
            .telemetry
            .counter_add(Counter::PoolIdleNanos, pool_idle_nanos);

        BatchReport {
            results,
            converged,
            attempts_by_solver,
            stats,
            cache: self.inner.cache.stats().since(&cache_before),
            robustness,
            pool_idle_nanos,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

impl EngineInner {
    /// Runs one job end to end: intake seams, cached analysis, the
    /// panic-isolated primary attempt, then the rescue ladder under the
    /// deadline and iteration budget. `workspace` is the running thread's
    /// buffer pool, threaded down to the fabric kernels so every attempt
    /// recycles its scratch vectors.
    fn run_job<T: Scalar>(
        &self,
        index: usize,
        matrix: &CsrMatrix<T>,
        rhs: &[T],
        guess: Option<&[T]>,
        policy: DeterminismPolicy,
        workspace: &WorkspaceHandle,
    ) -> JobOutcome<T> {
        let start = Instant::now();
        let job = index as u64;
        let mut panics = 0u64;
        let sink = self.telemetry.with_job(job);
        sink.emit(EventKind::JobStart {
            fast: policy.is_fast(),
        });

        // Intake seams. The poisoned copy (if any) replaces the caller's
        // RHS for every attempt; input validation then rejects it as a
        // typed, non-retryable error — that rejection *is* the detection.
        let intake = sink.span(Span::Intake);
        let poisoned: Option<Vec<T>> = self.injector.as_ref().and_then(|inj| {
            let mut copy = rhs.to_vec();
            inj.poison_rhs(job, &mut copy).then_some(copy)
        });
        let rhs: &[T] = poisoned.as_deref().unwrap_or(rhs);
        if let Some(inj) = &self.injector {
            if inj.corrupt_cache(job) {
                // The cache's provenance guard turns this into a counted
                // collision + re-analysis on the lookup just below.
                self.cache.corrupt_entry(&PatternFingerprint::of(matrix));
            }
        }
        drop(intake);
        let artifacts = {
            let _analyze = sink.span(Span::Analyze);
            self.cache
                .get_or_analyze_with(&self.acamar, matrix, policy, &sink)
        };

        // Primary attempt: the accelerator's own defenses (Solver
        // Modifier switching, GMRES fallback) run inside it.
        let mut result = {
            let _solve = sink.span(Span::Solve);
            self.attempt(
                matrix,
                rhs,
                guess,
                &artifacts,
                job,
                0,
                None,
                policy,
                &mut panics,
                workspace,
                &sink,
            )
        };
        let mut rungs = 0usize;
        let mut deadline_missed = false;

        let done = matches!(&result, Ok(r) if r.converged())
            || matches!(&result, Err(e) if e.is_invalid_input());
        if !done {
            if let Some(rescue) = self.resilience.rescue {
                let _rescue = sink.span(Span::Rescue);
                let base = self.acamar.config().criteria;
                let primary = artifacts.structure.solver;
                let mut climb = Climb::new();
                if let Ok(r) = &result {
                    climb.absorb(r);
                }

                for &step in rescue.ladder() {
                    if let Some(limit) = self.resilience.deadline {
                        let elapsed = start.elapsed();
                        if elapsed >= limit {
                            result = Err(SolveError::DeadlineExceeded {
                                elapsed_ms: elapsed.as_millis() as u64,
                                limit_ms: limit.as_millis() as u64,
                            });
                            deadline_missed = true;
                            break;
                        }
                    }
                    if let Some(budget) = self.resilience.iteration_budget {
                        if climb.iters_spent >= budget {
                            break;
                        }
                    }
                    let Some(kind) = rescue.solver_for(step, primary, &climb.tried) else {
                        // Nothing new to offer; skip without burning depth.
                        continue;
                    };
                    rungs += 1;
                    sink.emit(EventKind::RescueStep {
                        step: rungs.min(u8::MAX as usize) as u8,
                        solver: kind.index() as u8,
                    });
                    sink.counter_add(Counter::RescueRungs, 1);
                    let criteria = rescue.rung_criteria(&base, rungs);
                    let next = self.attempt(
                        matrix,
                        rhs,
                        guess,
                        &artifacts,
                        job,
                        rungs as u64,
                        Some((criteria, kind)),
                        policy,
                        &mut panics,
                        workspace,
                        &sink,
                    );
                    if let Ok(r) = &next {
                        climb.absorb(r);
                    }
                    let rescued = matches!(&next, Ok(r) if r.converged());
                    let invalid = matches!(&next, Err(e) if e.is_invalid_input());
                    match (&result, next) {
                        // A numerical report from an earlier attempt is
                        // more informative than a later rung's panic.
                        (Ok(_), Err(_)) => {}
                        (_, next) => result = next,
                    }
                    if rescued || invalid {
                        break;
                    }
                }

                // The job's report describes the whole climb, not just the
                // final rung.
                if rungs > 0 {
                    if let Ok(r) = &mut result {
                        r.attempts = climb.attempts;
                        r.stats = climb.stats;
                    }
                }
            }
        }

        let converged = matches!(&result, Ok(r) if r.converged());
        if policy.is_fast() {
            sink.counter_add(Counter::FastTierSolves, 1);
            if converged {
                sink.counter_add(Counter::FastTierConverged, 1);
            }
        }
        sink.emit(EventKind::JobEnd {
            converged,
            rungs: rungs as u32,
        });
        JobOutcome {
            result,
            rungs,
            panics,
            deadline_missed,
        }
    }

    /// One panic-isolated solver attempt. `forced` carries a rescue
    /// rung's `(criteria, solver)`; `None` runs the accelerator's own
    /// decision chain. The worker-disruption seam fires *inside* the
    /// unwind boundary, so an injected panic exercises the same isolation
    /// path a genuine one would.
    #[allow(clippy::too_many_arguments)]
    fn attempt<T: Scalar>(
        &self,
        matrix: &CsrMatrix<T>,
        rhs: &[T],
        guess: Option<&[T]>,
        artifacts: &AnalysisArtifacts,
        job: u64,
        rung: u64,
        forced: Option<(acamar_solvers::ConvergenceCriteria, SolverKind)>,
        policy: DeterminismPolicy,
        panics: &mut u64,
        workspace: &WorkspaceHandle,
        sink: &TelemetrySink,
    ) -> Result<AcamarRunReport<T>, SolveError> {
        // The planned solver: a rescue rung's forced kind, or the Matrix
        // Structure pick (the Solver Modifier may still switch mid-run —
        // `AttemptEnd` reports the solver that actually finished).
        let planned = forced
            .as_ref()
            .map(|(_, s)| *s)
            .unwrap_or(artifacts.structure.solver);
        let rung_u8 = rung.min(u8::MAX as u64) as u8;
        sink.emit(EventKind::AttemptStart {
            solver: planned.index() as u8,
            rung: rung_u8,
        });
        // Salting by rung gives each rescue attempt a fresh site
        // namespace; an un-salted retry would re-draw the exact faults
        // that killed the run it is rescuing.
        let fault = self
            .injector
            .as_ref()
            .map(|inj| FaultContext::new(Arc::clone(inj), job).with_salt(rung));
        let disruption = self
            .injector
            .as_ref()
            .and_then(|inj| inj.disrupt_worker(job, rung));
        let run = catch_unwind(AssertUnwindSafe(|| {
            match disruption {
                Some(WorkerDisruption::Panic) => std::panic::panic_any(InjectedPanic { job }),
                Some(WorkerDisruption::Stall { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis))
                }
                None => {}
            }
            let (criteria, solver) = match forced {
                Some((c, s)) => (Some(c), Some(s)),
                None => (None, None),
            };
            self.acamar.run_with_plan_opts(
                matrix,
                rhs,
                guess,
                artifacts,
                RunOptions {
                    criteria,
                    solver,
                    fault,
                    workspace: Some(workspace.clone()),
                    telemetry: sink.clone(),
                    policy,
                },
            )
        }));
        let result = match run {
            Ok(result) => result.map_err(SolveError::from),
            Err(payload) => {
                *panics += 1;
                Err(SolveError::Panicked {
                    message: describe_panic(payload.as_ref()),
                })
            }
        };
        if sink.enabled() {
            let (solver, converged, iterations) = match &result {
                Ok(r) => (
                    r.solve.solver.index() as u8,
                    r.converged(),
                    r.solve.iterations.min(u32::MAX as usize) as u32,
                ),
                Err(_) => (planned.index() as u8, false, 0),
            };
            sink.emit(EventKind::AttemptEnd {
                solver,
                rung: rung_u8,
                converged,
                iterations,
            });
        }
        result
    }

    /// Lifetime-counter bookkeeping shared by `solve_one` and the batch
    /// workers.
    fn account_job<T>(&self, outcome: &JobOutcome<T>) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter_add(Counter::JobsCompleted, 1);
        if let Ok(report) = &outcome.result {
            for at in &report.attempts {
                self.attempts[at.solver.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Running accumulation of a job's climb up the rescue ladder: every
/// attempt made, the merged fabric stats, the solver kinds already
/// tried, and the iteration budget spent.
struct Climb {
    attempts: Vec<SolveAttempt>,
    stats: FabricRunStats,
    tried: Vec<SolverKind>,
    iters_spent: usize,
}

impl Climb {
    fn new() -> Climb {
        Climb {
            attempts: Vec::new(),
            stats: FabricRunStats::empty(),
            tried: Vec::new(),
            iters_spent: 0,
        }
    }

    fn absorb<T>(&mut self, r: &AcamarRunReport<T>) {
        for at in &r.attempts {
            self.iters_spent += at.iterations;
            if !self.tried.contains(&at.solver) {
                self.tried.push(at.solver);
            }
        }
        self.attempts.extend(r.attempts.iter().cloned());
        self.stats = self.stats.merge(&r.stats);
    }
}

/// Best-effort description of a caught panic payload.
fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected worker panic (job {})", p.job)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::AcamarConfig;
    use acamar_fabric::FabricSpec;
    use acamar_faultline::{FaultCategory, FaultPlan};
    use acamar_solvers::ConvergenceCriteria;
    use acamar_sparse::generate::{self, RowDistribution};
    use acamar_sparse::SparseError;

    fn engine(workers: usize) -> Engine {
        let cfg = AcamarConfig::paper()
            .with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
        Engine::with_workers(Acamar::new(FabricSpec::alveo_u55c(), cfg), workers)
    }

    /// An engine whose base iteration budget is far too small to
    /// converge, so the primary run always fails and the rescue ladder
    /// (whose `min_iterations` floor restores a real budget) is the only
    /// path to convergence.
    fn starved_engine(workers: usize, resilience: ResilienceConfig) -> Engine {
        let cfg = AcamarConfig::paper()
            .with_criteria(ConvergenceCriteria::paper().with_max_iterations(4));
        Engine::with_workers(Acamar::new(FabricSpec::alveo_u55c(), cfg), workers)
            .with_resilience(resilience)
    }

    fn rescue_with_floor(min_iterations: usize) -> ResilienceConfig {
        ResilienceConfig {
            rescue: Some(RescuePolicy {
                min_iterations,
                ..RescuePolicy::default()
            }),
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn solve_one_matches_direct_run() {
        let e = engine(1);
        let a = generate::poisson2d::<f64>(12, 12);
        let b = vec![1.0_f64; 144];
        let via_engine = e.solve_one(&a, &b).unwrap();
        let direct = e.acamar().run(&a, &b).unwrap();
        assert_eq!(via_engine.solve.solution, direct.solve.solution);
        assert_eq!(via_engine.attempts.len(), direct.attempts.len());
        assert_eq!(e.counters().jobs_completed, 1);
    }

    #[test]
    fn respawn_gives_a_cold_equivalent_engine_sharing_the_injector() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(3)));
        let e = engine(2)
            .with_resilience(ResilienceConfig::hardened())
            .with_fault_injection(Arc::clone(&injector));
        let a = generate::poisson2d::<f64>(8, 8);
        let b = vec![1.0_f64; 64];
        let warm = e.solve_one(&a, &b).unwrap();
        assert!(e.is_warm(&a));

        let fresh = e.respawn();
        assert!(!fresh.is_warm(&a), "respawn must start with a cold cache");
        assert_eq!(fresh.workers(), e.workers());
        assert_eq!(fresh.counters().jobs_completed, 0);
        assert!(
            Arc::ptr_eq(fresh.injector().unwrap(), &injector),
            "the chaos ledger must stay shared across a restart"
        );
        let again = fresh.solve_one(&a, &b).unwrap();
        assert_eq!(again.solve.solution, warm.solve.solution);
    }

    #[test]
    fn solve_batch_analyzes_once() {
        let e = engine(4);
        let a = generate::poisson2d::<f64>(10, 10);
        let rhss: Vec<Vec<f64>> = (0..9).map(|k| vec![(k + 1) as f64; 100]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        assert_eq!(batch.jobs(), 9);
        assert!(batch.all_converged());
        assert_eq!(batch.cache.misses, 1);
        assert_eq!(batch.cache.hits, 8);
        assert!(batch.cache.plan_build_cycles_saved > 0);
        assert!(batch.jobs_per_second() > 0.0);
        // Quiet engine: clean ledger, everyone finished on the primary run.
        assert_eq!(batch.robustness.injected_total(), 0);
        assert!(batch.robustness.accounted());
        assert_eq!(batch.robustness.rescue_depths[0], 9);
        assert_eq!(batch.robustness.panics_caught, 0);
    }

    #[test]
    fn batch_histogram_counts_every_attempt() {
        let e = engine(2);
        let a = generate::diagonally_dominant::<f64>(
            64,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            3,
        );
        let rhss: Vec<Vec<f64>> = (0..4).map(|k| vec![1.0 + k as f64; 64]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        // Dominant matrix: Jacobi first try, every time.
        assert_eq!(batch.attempts_by_solver[SolverKind::Jacobi.index()], 4);
        assert_eq!(batch.total_attempts(), 4);
        assert_eq!(e.counters().attempts_by_solver, batch.attempts_by_solver);
    }

    #[test]
    fn shape_errors_fail_their_job_without_aborting_the_batch() {
        let e = engine(2);
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let jobs = vec![
            SolveJob::new(Arc::clone(&a), vec![1.0_f64; 64]),
            SolveJob::new(Arc::clone(&a), vec![1.0_f64; 63]), // wrong length
            SolveJob::new(Arc::clone(&a), vec![2.0_f64; 64]),
        ];
        let batch = e.solve_jobs(jobs);
        assert!(batch.results[0].is_ok());
        assert!(matches!(&batch.results[1], Err(e) if e.is_invalid_input()));
        assert!(batch.results[2].is_ok());
        assert_eq!(batch.converged, 2);
        assert!(!batch.all_converged());
        assert_eq!(batch.robustness.exhausted_jobs, vec![1]);
    }

    #[test]
    fn non_finite_inputs_are_rejected_with_typed_errors() {
        let e = engine(1);
        let a = generate::poisson2d::<f64>(6, 6);
        let mut b = vec![1.0_f64; 36];
        b[7] = f64::NAN;
        match e.solve_one(&a, &b) {
            Err(SolveError::Invalid(SparseError::NonFiniteValue { what, index })) => {
                assert_eq!(what, "right-hand side");
                assert_eq!(index, 7);
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
        // A poisoned warm-start guess is rejected the same way, and —
        // being deterministic — never climbs the rescue ladder even on a
        // rescue-enabled engine.
        let e = engine(1).with_resilience(ResilienceConfig::hardened());
        let am = Arc::new(a);
        let mut x0 = vec![0.0_f64; 36];
        x0[0] = f64::INFINITY;
        let batch = e.solve_jobs(vec![
            SolveJob::new(Arc::clone(&am), vec![1.0_f64; 36]).with_guess(x0)
        ]);
        assert!(matches!(&batch.results[0], Err(err) if err.is_invalid_input()));
        assert_eq!(batch.robustness.rescue_depths[0], 1, "no rescue climbed");
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let e = engine(3);
        let batch = e.solve_jobs(Vec::<SolveJob<f64>>::new());
        assert_eq!(batch.jobs(), 0);
        assert_eq!(batch.total_attempts(), 0);
        assert_eq!(batch.jobs_per_second(), 0.0);
        assert!(batch.all_converged());
        assert!(batch.robustness.accounted());
    }

    #[test]
    fn merged_stats_accumulate_across_jobs() {
        let e = engine(2);
        let a = generate::poisson2d::<f64>(10, 10);
        let one = e.solve_one(&a, &vec![1.0_f64; 100]).unwrap();
        let batch = e
            .solve_batch(&a, &[vec![1.0_f64; 100], vec![2.0_f64; 100]])
            .unwrap();
        assert!(batch.stats.cycles.total() >= one.stats.cycles.total());
        assert!(batch.stats.useful_flops >= one.stats.useful_flops);
        assert!(batch.stats.peak_area_mm2 >= one.stats.peak_area_mm2);
    }

    #[test]
    fn warm_guess_is_forwarded() {
        let e = engine(1);
        let a = Arc::new(generate::poisson2d::<f64>(10, 10));
        let b = vec![1.0_f64; 100];
        let cold = e.solve_jobs(vec![SolveJob::new(Arc::clone(&a), b.clone())]);
        let x = cold.results[0].as_ref().unwrap().solve.solution.clone();
        let warm = e.solve_jobs(vec![SolveJob::new(Arc::clone(&a), b).with_guess(x)]);
        let w = warm.results[0].as_ref().unwrap();
        assert!(w.converged());
        let c = cold.results[0].as_ref().unwrap();
        assert!(w.solve.iterations <= c.solve.iterations);
    }

    #[test]
    fn quiet_injector_reproduces_the_plain_run_exactly() {
        let a = generate::poisson2d::<f64>(10, 10);
        let rhss: Vec<Vec<f64>> = (0..4).map(|k| vec![1.0 + k as f64; 100]).collect();
        let plain = engine(2).solve_batch(&a, &rhss).unwrap();
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(7)));
        let chaos_off = engine(2)
            .with_fault_injection(Arc::clone(&injector))
            .with_resilience(ResilienceConfig::hardened())
            .solve_batch(&a, &rhss)
            .unwrap();
        assert_eq!(injector.injected_total(), 0);
        for (p, c) in plain.results.iter().zip(&chaos_off.results) {
            let (p, c) = (p.as_ref().unwrap(), c.as_ref().unwrap());
            assert_eq!(p.solve.solution, c.solve.solution);
            assert_eq!(p.solve.iterations, c.solve.iterations);
            assert_eq!(p.stats.cycles.total(), c.stats.cycles.total());
        }
    }

    #[test]
    fn panicking_jobs_are_isolated_and_the_batch_completes() {
        let plan = FaultPlan::new(42).with_rate(FaultCategory::WorkerDisruption, 1.0);
        let injector = Arc::new(FaultInjector::new(plan));
        // No rescue: a panicked primary run fails its job outright.
        let e = engine(4).with_fault_injection(Arc::clone(&injector));
        let a = generate::poisson2d::<f64>(8, 8);
        let rhss: Vec<Vec<f64>> = (0..8).map(|k| vec![1.0 + k as f64; 64]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        assert_eq!(batch.jobs(), 8, "every slot filled");
        let panicked = batch
            .results
            .iter()
            .filter(|r| matches!(r, Err(SolveError::Panicked { .. })))
            .count();
        // Disruptions are 50/50 panic vs stall per job; seed 42 yields
        // both kinds across eight jobs, deterministically.
        assert!(panicked >= 1, "at least one injected panic");
        assert!(batch.converged >= 1, "stalled jobs still converge");
        assert_eq!(panicked + batch.converged, 8);
        assert_eq!(batch.robustness.panics_caught as usize, panicked);
        assert!(batch.robustness.accounted());
        let t = batch.robustness.tallies[FaultCategory::WorkerDisruption.index()];
        assert_eq!(t.injected, 8);
        assert_eq!(t.exhausted as usize, panicked);
    }

    #[test]
    fn rescue_ladder_recovers_a_starved_job() {
        // Base budget of 4 iterations cannot converge; the first rescue
        // rung re-runs with the policy's 2000-iteration floor and does.
        let e = starved_engine(1, rescue_with_floor(2000));
        let a = generate::poisson2d::<f64>(10, 10);
        let batch = e.solve_batch(&a, &[vec![1.0_f64; 100]]).unwrap();
        assert!(batch.all_converged());
        assert_eq!(batch.robustness.rescue_depths[1], 1, "one rung climbed");
        assert_eq!(batch.robustness.rescued_jobs(), 1);
        let report = batch.results[0].as_ref().unwrap();
        assert!(
            report.attempts.len() >= 2,
            "merged report keeps the failed primary attempts"
        );
        assert!(report.converged());
    }

    #[test]
    fn rescue_without_recovery_marks_the_job_exhausted() {
        // The floor is as starved as the base: no rung can converge.
        let e = starved_engine(1, rescue_with_floor(4));
        let a = generate::poisson2d::<f64>(10, 10);
        let batch = e.solve_batch(&a, &[vec![1.0_f64; 100]]).unwrap();
        assert_eq!(batch.converged, 0);
        assert_eq!(batch.robustness.exhausted_jobs, vec![0]);
        assert!(batch.robustness.rescued_jobs() >= 1, "it did try");
    }

    #[test]
    fn zero_deadline_fails_fast_with_a_typed_error() {
        let e = starved_engine(1, rescue_with_floor(2000).with_deadline(Duration::ZERO));
        let a = generate::poisson2d::<f64>(10, 10);
        let batch = e.solve_batch(&a, &[vec![1.0_f64; 100]]).unwrap();
        assert!(matches!(
            batch.results[0],
            Err(SolveError::DeadlineExceeded { limit_ms: 0, .. })
        ));
        assert_eq!(batch.robustness.deadline_misses, 1);
        assert_eq!(batch.robustness.exhausted_jobs, vec![0]);
    }

    #[test]
    fn iteration_budget_stops_the_climb() {
        // The primary run spends ≥ 1 iteration, exhausting a budget of 1
        // before any rung is climbed.
        let e = starved_engine(1, rescue_with_floor(2000).with_iteration_budget(1));
        let a = generate::poisson2d::<f64>(10, 10);
        let batch = e.solve_batch(&a, &[vec![1.0_f64; 100]]).unwrap();
        assert_eq!(batch.converged, 0);
        assert_eq!(batch.robustness.rescue_depths[0], 1, "no rung climbed");
        assert_eq!(batch.robustness.rescued_jobs(), 0);
    }

    #[test]
    fn cache_corruption_is_absorbed_by_the_provenance_guard() {
        let plan = FaultPlan::new(11).with_rate(FaultCategory::CacheCorruption, 1.0);
        let injector = Arc::new(FaultInjector::new(plan));
        let e = engine(1).with_fault_injection(Arc::clone(&injector));
        let a = generate::poisson2d::<f64>(8, 8);
        let rhss: Vec<Vec<f64>> = (0..4).map(|k| vec![1.0 + k as f64; 64]).collect();
        let batch = e.solve_batch(&a, &rhss).unwrap();
        assert!(batch.all_converged(), "corruption never reaches a solve");
        let t = batch.robustness.tallies[FaultCategory::CacheCorruption.index()];
        assert_eq!(t.injected, 4);
        assert_eq!(t.detected, 4, "absorbed with zero rescues");
        // Jobs 2..4 corrupt an existing entry, which the guard counts.
        assert!(batch.cache.collisions >= 1);
        assert!(batch.robustness.accounted());
    }
}
