//! Fault accounting for a batch: what was injected, what happened to it.

use acamar_core::RescueStep;
use acamar_faultline::{FaultCategory, FaultEvent};

/// Number of rescue-depth buckets: depth 0 (no rescue needed) through the
/// full ladder.
pub const DEPTH_BUCKETS: usize = RescueStep::LADDER.len() + 1;

/// Per-category reconciliation of injected faults against job outcomes.
///
/// The three outcome buckets are disjoint and every injected fault lands
/// in exactly one, so `detected + recovered + exhausted == injected`
/// always holds (see [`RobustnessReport::accounted`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Faults the harness injected into jobs of this batch.
    pub injected: u64,
    /// Faults whose job still converged without engine-level rescue: the
    /// in-run defenses (divergence classification + Solver Modifier
    /// switch, reconfiguration degrade, cache-collision guard) absorbed
    /// them.
    pub detected: u64,
    /// Faults whose job converged only after climbing ≥ 1 rescue rung.
    pub recovered: u64,
    /// Faults whose job ultimately failed (typed error or divergence
    /// after every rescue).
    pub exhausted: u64,
}

/// What one job looked like when the batch finished — the input to the
/// per-fault bucketing.
#[derive(Debug, Clone, Copy)]
pub struct JobDisposition {
    /// The job's final attempt converged.
    pub converged: bool,
    /// Rescue rungs the engine climbed for it (0 = primary run only).
    pub rungs: usize,
}

/// Robustness summary attached to every
/// [`BatchReport`](crate::BatchReport).
///
/// Without an installed fault injector all tallies are zero but the
/// rescue/panic/deadline counters still describe real engine activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobustnessReport {
    /// Reconciliation per fault category, indexed by
    /// [`FaultCategory::index`].
    pub tallies: [FaultTally; FaultCategory::COUNT],
    /// Histogram of rescue depth over jobs: `rescue_depths[d]` jobs
    /// finished after climbing exactly `d` rungs.
    pub rescue_depths: [u64; DEPTH_BUCKETS],
    /// Submission indices of jobs that failed after every rescue (typed
    /// error or final divergence).
    pub exhausted_jobs: Vec<usize>,
    /// Worker panics caught and isolated by the engine.
    pub panics_caught: u64,
    /// Jobs cut off by their wall-clock deadline.
    pub deadline_misses: u64,
}

impl RobustnessReport {
    /// Builds the report by bucketing each injected fault according to
    /// the disposition of the job it targeted. Events whose job index
    /// falls outside `jobs` (impossible under the engine's keying) count
    /// as exhausted so they are never silently dropped.
    pub fn reconcile(events: &[FaultEvent], jobs: &[JobDisposition]) -> RobustnessReport {
        let mut report = RobustnessReport::default();
        for (i, job) in jobs.iter().enumerate() {
            report.rescue_depths[job.rungs.min(DEPTH_BUCKETS - 1)] += 1;
            if !job.converged {
                report.exhausted_jobs.push(i);
            }
        }
        for e in events {
            let tally = &mut report.tallies[e.category.index()];
            tally.injected += 1;
            match jobs.get(e.job as usize) {
                Some(j) if j.converged && j.rungs == 0 => tally.detected += 1,
                Some(j) if j.converged => tally.recovered += 1,
                _ => tally.exhausted += 1,
            }
        }
        report
    }

    /// Total faults injected across all categories.
    pub fn injected_total(&self) -> u64 {
        self.tallies.iter().map(|t| t.injected).sum()
    }

    /// Total faults whose jobs converged (with or without rescue).
    pub fn survived_total(&self) -> u64 {
        self.tallies.iter().map(|t| t.detected + t.recovered).sum()
    }

    /// `true` when every category satisfies
    /// `detected + recovered + exhausted == injected` — the ledger and
    /// the job outcomes agree and no fault went unaccounted.
    pub fn accounted(&self) -> bool {
        self.tallies
            .iter()
            .all(|t| t.detected + t.recovered + t.exhausted == t.injected)
    }

    /// Jobs that needed at least one rescue rung.
    pub fn rescued_jobs(&self) -> u64 {
        self.rescue_depths[1..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(category: FaultCategory, job: u64) -> FaultEvent {
        FaultEvent {
            category,
            job,
            site: 0,
        }
    }

    #[test]
    fn reconcile_buckets_by_job_disposition() {
        let jobs = [
            JobDisposition {
                converged: true,
                rungs: 0,
            },
            JobDisposition {
                converged: true,
                rungs: 2,
            },
            JobDisposition {
                converged: false,
                rungs: 4,
            },
        ];
        let events = [
            event(FaultCategory::RhsPoison, 2),
            event(FaultCategory::SpmvBitFlip, 0),
            event(FaultCategory::SpmvBitFlip, 1),
            event(FaultCategory::WorkerDisruption, 1),
        ];
        let r = RobustnessReport::reconcile(&events, &jobs);
        assert!(r.accounted());
        assert_eq!(r.injected_total(), 4);
        let flips = r.tallies[FaultCategory::SpmvBitFlip.index()];
        assert_eq!(
            (flips.detected, flips.recovered, flips.exhausted),
            (1, 1, 0)
        );
        assert_eq!(r.tallies[FaultCategory::RhsPoison.index()].exhausted, 1);
        assert_eq!(r.rescue_depths[0], 1);
        assert_eq!(r.rescue_depths[2], 1);
        assert_eq!(r.rescue_depths[4], 1);
        assert_eq!(r.rescued_jobs(), 2);
        assert_eq!(r.exhausted_jobs, vec![2]);
        assert_eq!(r.survived_total(), 3);
    }

    #[test]
    fn out_of_range_events_are_never_dropped() {
        let jobs = [JobDisposition {
            converged: true,
            rungs: 0,
        }];
        let events = [event(FaultCategory::CacheCorruption, 99)];
        let r = RobustnessReport::reconcile(&events, &jobs);
        assert!(r.accounted());
        assert_eq!(
            r.tallies[FaultCategory::CacheCorruption.index()].exhausted,
            1
        );
    }

    #[test]
    fn quiet_batch_reconciles_to_all_zero_tallies() {
        let jobs = [JobDisposition {
            converged: true,
            rungs: 0,
        }];
        let r = RobustnessReport::reconcile(&[], &jobs);
        assert!(r.accounted());
        assert_eq!(r.injected_total(), 0);
        assert!(r.exhausted_jobs.is_empty());
        assert_eq!(r.rescue_depths[0], 1);
    }
}
