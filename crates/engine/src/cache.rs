//! The shared structure/plan cache.

use crate::fingerprint::PatternFingerprint;
use acamar_core::{Acamar, AnalysisArtifacts};
use acamar_sparse::{CsrMatrix, DeterminismPolicy, Scalar};
use acamar_telemetry::{Counter, EventKind, TelemetrySink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Snapshot of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run [`Acamar::analyze`].
    pub misses: u64,
    /// Lookups whose stored entry failed provenance verification (an
    /// FNV-1a digest collision, or injected corruption) and were
    /// re-analyzed; every collision is also counted as a miss.
    pub collisions: u64,
    /// Distinct patterns currently cached.
    pub entries: usize,
    /// Host decision-loop work avoided by hits, in row/entry traversals
    /// (the sum of each hit entry's
    /// [`build_cost`](AnalysisArtifacts::build_cost)).
    pub plan_build_cycles_saved: u64,
    /// Wall-clock nanoseconds spent inside [`Acamar::analyze`] on misses
    /// — structure analysis, MSID planning, and SpMV plan compilation.
    /// Hits pay none of this; dividing by `misses` gives the one-time
    /// compile cost a batch amortizes over its remaining solves.
    pub analysis_nanos: u64,
    /// Entries evicted (least-recently-used first) to stay within the
    /// capacity set by [`PlanCache::set_capacity`]; `0` while the cache
    /// is unbounded (the default).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier`, for per-batch accounting.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            collisions: self.collisions - earlier.collisions,
            entries: self.entries,
            plan_build_cycles_saved: self.plan_build_cycles_saved - earlier.plan_build_cycles_saved,
            analysis_nanos: self.analysis_nanos - earlier.analysis_nanos,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// One cached pattern: the artifacts plus the provenance of the matrix
/// they were built from. The digest inside the [`PatternFingerprint`] key
/// is not collision-proof, so a hit must re-verify the cheap invariants
/// before trusting the entry.
#[derive(Debug, Clone)]
struct CacheEntry {
    artifacts: Arc<AnalysisArtifacts>,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Logical recency stamp (ticks of [`PlanCache::tick`]), refreshed on
    /// every hit; the LRU eviction scan keys on it. Shared so hits can
    /// refresh it under the read lock.
    last_used: Arc<AtomicU64>,
}

impl CacheEntry {
    fn verifies_against<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        self.nrows == a.nrows() && self.ncols == a.ncols() && self.nnz == a.nnz()
    }
}

/// Concurrent map from `(PatternFingerprint, DeterminismPolicy)` to
/// shared [`AnalysisArtifacts`].
///
/// Entries are keyed by determinism tier as well as pattern, so a `Fast`
/// and a `Deterministic` plan for the same matrix coexist: a mixed
/// workload never evicts or aliases the other tier's entry, and the two
/// tiers are free to diverge in what they cache. (Today plan compilation
/// itself is policy-independent, so a tier's first lookup on an
/// already-warm pattern still runs its own analysis miss.)
///
/// Reads take the `RwLock` shared, so concurrent workers hitting warm
/// patterns never serialize. A miss upgrades to the exclusive lock and
/// runs the analysis while holding it: the first worker to see a new
/// pattern builds its artifacts exactly once and every concurrent
/// requester of the same pattern blocks briefly and then *hits* — the
/// accounting invariant `misses == distinct patterns` holds even under
/// contention, which the batch engine's tests rely on.
///
/// A hit additionally verifies the entry's stored `(nrows, ncols, nnz)`
/// provenance against the incoming matrix: the FNV-1a digest alone is
/// not collision-proof, and serving another pattern's plan would at best
/// fail the schedule-coverage check and at worst mis-schedule the SpMV
/// walk. A verification failure counts as a collision *and* a miss, and
/// the entry is rebuilt from the incoming matrix.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: RwLock<HashMap<(PatternFingerprint, DeterminismPolicy), CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
    saved: AtomicU64,
    analysis_nanos: AtomicU64,
    evictions: AtomicU64,
    /// Logical clock stamping entry recency; bumped on every hit/insert.
    tick: AtomicU64,
    /// Maximum entries to retain; `0` = unbounded (the default).
    capacity: AtomicUsize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns `a`'s artifacts for the `Deterministic` tier, analyzing on
    /// first sight of its pattern (or on a verification failure of the
    /// stored entry).
    pub fn get_or_analyze<T: Scalar>(
        &self,
        acamar: &Acamar,
        a: &CsrMatrix<T>,
    ) -> Arc<AnalysisArtifacts> {
        self.get_or_analyze_with(
            acamar,
            a,
            DeterminismPolicy::Deterministic,
            &TelemetrySink::disabled(),
        )
    }

    /// [`PlanCache::get_or_analyze`] with the lookup's outcome mirrored
    /// into `sink`: a [`EventKind::CacheHit`], [`EventKind::CacheMiss`]
    /// (carrying the measured analysis time), or
    /// [`EventKind::CacheCollision`] event plus the matching counters. The
    /// cache's own statistics and the telemetry counters are fed from the
    /// same observations, so a batch's [`CacheStats`] delta and its
    /// exported metrics always agree. The entry is keyed by `(pattern,
    /// policy)`, so each determinism tier warms independently.
    pub fn get_or_analyze_with<T: Scalar>(
        &self,
        acamar: &Acamar,
        a: &CsrMatrix<T>,
        policy: DeterminismPolicy,
        sink: &TelemetrySink,
    ) -> Arc<AnalysisArtifacts> {
        let fp = (PatternFingerprint::of(a), policy);
        if let Some(entry) = self.map.read().expect("cache lock poisoned").get(&fp) {
            if entry.verifies_against(a) {
                self.record_hit(entry);
                sink.emit(EventKind::CacheHit);
                sink.counter_add(Counter::CacheHits, 1);
                return Arc::clone(&entry.artifacts);
            }
            // Collision or corruption: fall through to the exclusive path
            // and rebuild.
        }
        let mut map = self.map.write().expect("cache lock poisoned");
        if let Some(entry) = map.get(&fp) {
            if entry.verifies_against(a) {
                // Another worker built (or repaired) it between our locks.
                self.record_hit(entry);
                sink.emit(EventKind::CacheHit);
                sink.counter_add(Counter::CacheHits, 1);
                return Arc::clone(&entry.artifacts);
            }
            self.collisions.fetch_add(1, Ordering::Relaxed);
            sink.emit(EventKind::CacheCollision);
            sink.counter_add(Counter::CacheCollisions, 1);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let art = Arc::new(acamar.analyze(a));
        let analysis_nanos = started.elapsed().as_nanos() as u64;
        self.analysis_nanos
            .fetch_add(analysis_nanos, Ordering::Relaxed);
        sink.emit(EventKind::CacheMiss { analysis_nanos });
        sink.counter_add(Counter::CacheMisses, 1);
        sink.counter_add(Counter::AnalysisNanos, analysis_nanos);
        map.insert(
            fp,
            CacheEntry {
                artifacts: Arc::clone(&art),
                nrows: a.nrows(),
                ncols: a.ncols(),
                nnz: a.nnz(),
                last_used: Arc::new(AtomicU64::new(self.next_tick())),
            },
        );
        self.evict_over_capacity(&mut map, &fp, sink);
        art
    }

    /// Registers externally built artifacts — a sequence's band-patched
    /// plan — under `a`'s pattern for `policy`, so subsequent same-pattern
    /// lookups hit instead of re-analyzing. Counts neither a hit nor a
    /// miss (the caller accounts the patch itself); the capacity bound and
    /// LRU eviction apply as on the analyze path.
    pub fn insert_artifacts<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        policy: DeterminismPolicy,
        artifacts: Arc<AnalysisArtifacts>,
        sink: &TelemetrySink,
    ) {
        let key = (PatternFingerprint::of(a), policy);
        let mut map = self.map.write().expect("cache lock poisoned");
        map.insert(
            key,
            CacheEntry {
                artifacts,
                nrows: a.nrows(),
                ncols: a.ncols(),
                nnz: a.nnz(),
                last_used: Arc::new(AtomicU64::new(self.next_tick())),
            },
        );
        self.evict_over_capacity(&mut map, &key, sink);
    }

    /// Bounds the cache to at most `capacity` entries, evicting
    /// least-recently-used entries immediately if it is already over;
    /// `0` restores the unbounded default. Evictions are counted in
    /// [`CacheStats::evictions`]; an evicted pattern's next lookup is an
    /// ordinary miss that re-analyzes and re-inserts — holders of the
    /// evicted `Arc` keep a valid (but no longer cached) plan.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        if capacity > 0 {
            let mut map = self.map.write().expect("cache lock poisoned");
            while map.len() > capacity {
                self.evict_lru(&mut map, None, &TelemetrySink::disabled());
            }
        }
    }

    /// The configured entry bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts LRU entries until the map respects the capacity bound,
    /// never evicting `keep` (the entry just inserted).
    fn evict_over_capacity(
        &self,
        map: &mut HashMap<(PatternFingerprint, DeterminismPolicy), CacheEntry>,
        keep: &(PatternFingerprint, DeterminismPolicy),
        sink: &TelemetrySink,
    ) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        while map.len() > cap {
            if !self.evict_lru(map, Some(keep), sink) {
                break;
            }
        }
    }

    fn evict_lru(
        &self,
        map: &mut HashMap<(PatternFingerprint, DeterminismPolicy), CacheEntry>,
        keep: Option<&(PatternFingerprint, DeterminismPolicy)>,
        sink: &TelemetrySink,
    ) -> bool {
        let victim = map
            .iter()
            .filter(|(k, _)| Some(*k) != keep)
            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| *k);
        let Some(k) = victim else {
            return false;
        };
        map.remove(&k);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        sink.emit(EventKind::CacheEvicted);
        sink.counter_add(Counter::CacheEvictions, 1);
        true
    }

    /// Whether `fp`'s pattern is already cached under *any* determinism
    /// tier (no counter updates, no verification). The serving layer's
    /// affinity router and its tests use this to ask "is this shard warm
    /// for this pattern?" without perturbing the hit/miss accounting —
    /// affinity cares about pattern warmth, not which tier warmed it.
    pub fn contains(&self, fp: &PatternFingerprint) -> bool {
        self.map
            .read()
            .expect("cache lock poisoned")
            .keys()
            .any(|(f, _)| f == fp)
    }

    /// Hit-path lookup by a **precomputed** key: returns the cached
    /// artifacts for `(fp, policy)` and records an ordinary hit (LRU
    /// refresh, [`CacheStats::hits`], [`EventKind::CacheHit`]), or
    /// `None` — counting nothing — when the entry is absent.
    ///
    /// Unlike [`PlanCache::get_or_analyze_with`], this neither hashes nor
    /// re-verifies the matrix pattern, so the caller must already have
    /// proven that its matrix matches `fp` (a [`Sequence`] does: the
    /// steady-state step takes this path only after an exact pattern
    /// comparison against the previous step reported an empty delta).
    /// That makes it O(1) per call — the point of the sequence API's
    /// analysis amortization — while an evicted entry still surfaces as
    /// an honest `None` that forces the caller back through the full
    /// analyze path.
    ///
    /// The lookup is strict about the tier: touching a `(fp, policy)`
    /// whose entry was evicted returns `None` without refreshing the
    /// recency of a surviving sibling-tier entry for the same pattern —
    /// otherwise a miss on one tier could keep the other tier's entry
    /// pinned in a bounded cache it no longer earns its slot in.
    ///
    /// [`Sequence`]: crate::Sequence
    pub fn touch(
        &self,
        fp: &PatternFingerprint,
        policy: DeterminismPolicy,
        sink: &TelemetrySink,
    ) -> Option<Arc<AnalysisArtifacts>> {
        let map = self.map.read().expect("cache lock poisoned");
        let entry = map.get(&(*fp, policy))?;
        self.record_hit(entry);
        sink.emit(EventKind::CacheHit);
        sink.counter_add(Counter::CacheHits, 1);
        Some(Arc::clone(&entry.artifacts))
    }

    /// Whether `fp`'s pattern is cached for the specific `policy` tier.
    pub fn contains_policy(&self, fp: &PatternFingerprint, policy: DeterminismPolicy) -> bool {
        self.map
            .read()
            .expect("cache lock poisoned")
            .contains_key(&(*fp, policy))
    }

    /// The cached artifacts for `fp`, if present under any tier
    /// (`Deterministic` preferred; no counter updates, no verification).
    pub fn peek(&self, fp: &PatternFingerprint) -> Option<Arc<AnalysisArtifacts>> {
        let map = self.map.read().expect("cache lock poisoned");
        DeterminismPolicy::ALL
            .iter()
            .find_map(|&p| map.get(&(*fp, p)).map(|e| Arc::clone(&e.artifacts)))
    }

    /// Fault-injection seam: corrupts the stored provenance of every tier's
    /// entry for `fp` (if cached) so the next lookup fails verification.
    /// Returns `true` if at least one entry was corrupted.
    pub fn corrupt_entry(&self, fp: &PatternFingerprint) -> bool {
        let mut map = self.map.write().expect("cache lock poisoned");
        let mut corrupted = false;
        for policy in DeterminismPolicy::ALL {
            if let Some(entry) = map.get_mut(&(*fp, policy)) {
                entry.nnz = entry.nnz.wrapping_add(1);
                corrupted = true;
            }
        }
        corrupted
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            entries: self.map.read().expect("cache lock poisoned").len(),
            plan_build_cycles_saved: self.saved.load(Ordering::Relaxed),
            analysis_nanos: self.analysis_nanos.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached pattern; counters keep their lifetime totals.
    pub fn clear(&self) {
        self.map.write().expect("cache lock poisoned").clear();
    }

    fn record_hit(&self, entry: &CacheEntry) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.saved
            .fetch_add(entry.artifacts.build_cost, Ordering::Relaxed);
        entry.last_used.store(self.next_tick(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::AcamarConfig;
    use acamar_fabric::FabricSpec;
    use acamar_sparse::generate;

    fn acamar() -> Acamar {
        Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
    }

    #[test]
    fn second_lookup_hits_and_banks_the_build_cost() {
        let cache = PlanCache::new();
        let a = generate::poisson2d::<f64>(12, 12);
        let first = cache.get_or_analyze(&acamar(), &a);
        let again = cache.get_or_analyze(&acamar(), &a);
        assert!(Arc::ptr_eq(&first, &again));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.collisions, 0);
        assert_eq!(s.plan_build_cycles_saved, first.build_cost);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn distinct_patterns_get_distinct_entries() {
        let cache = PlanCache::new();
        let ac = acamar();
        cache.get_or_analyze(&ac, &generate::poisson2d::<f64>(8, 8));
        cache.get_or_analyze(&ac, &generate::poisson2d::<f64>(9, 9));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn corrupted_entry_is_detected_and_rebuilt() {
        let cache = PlanCache::new();
        let ac = acamar();
        let a = generate::poisson2d::<f64>(8, 8);
        let fp = PatternFingerprint::of(&a);
        let first = cache.get_or_analyze(&ac, &a);
        assert!(cache.corrupt_entry(&fp));
        let repaired = cache.get_or_analyze(&ac, &a);
        // The rebuilt artifacts are equal but freshly allocated.
        assert!(!Arc::ptr_eq(&first, &repaired));
        assert_eq!(*first, *repaired);
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 2, "the collision re-analyzes as a miss");
        assert_eq!(s.hits, 0);
        // The repaired entry verifies again.
        cache.get_or_analyze(&ac, &a);
        assert_eq!(cache.stats().hits, 1);
        // Corrupting an uncached pattern is a no-op.
        assert!(!cache.corrupt_entry(&PatternFingerprint::of(&generate::poisson2d::<f64>(3, 3))));
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let cache = PlanCache::new();
        let ac = acamar();
        let a = generate::poisson2d::<f64>(8, 8);
        cache.get_or_analyze(&ac, &a);
        cache.get_or_analyze(&ac, &a);
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!((s.hits, s.misses), (1, 1));
        // Re-analyzing after clear is a fresh miss.
        cache.get_or_analyze(&ac, &a);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let before = CacheStats {
            hits: 3,
            misses: 2,
            collisions: 0,
            entries: 2,
            plan_build_cycles_saved: 100,
            analysis_nanos: 1_000,
            evictions: 1,
        };
        let after = CacheStats {
            hits: 10,
            misses: 3,
            collisions: 1,
            entries: 3,
            plan_build_cycles_saved: 450,
            analysis_nanos: 5_500,
            evictions: 3,
        };
        let d = after.since(&before);
        assert_eq!((d.hits, d.misses, d.collisions), (7, 1, 1));
        assert_eq!(d.plan_build_cycles_saved, 350);
        assert_eq!(d.entries, 3);
        assert_eq!(d.analysis_nanos, 4_500);
        assert_eq!(d.evictions, 2);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = PlanCache::new();
        cache.set_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let ac = acamar();
        let a = generate::poisson2d::<f64>(8, 8);
        let b = generate::poisson2d::<f64>(9, 9);
        let c = generate::poisson2d::<f64>(10, 10);
        let (fa, fb, fc) = (
            PatternFingerprint::of(&a),
            PatternFingerprint::of(&b),
            PatternFingerprint::of(&c),
        );
        cache.get_or_analyze(&ac, &a);
        cache.get_or_analyze(&ac, &b);
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        cache.get_or_analyze(&ac, &a);
        cache.get_or_analyze(&ac, &c);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(cache.contains(&fa));
        assert!(!cache.contains(&fb));
        assert!(cache.contains(&fc));
        // The evicted pattern's next lookup is an honest miss that
        // re-analyzes and re-inserts — never a dangling reuse.
        let misses_before = cache.stats().misses;
        cache.get_or_analyze(&ac, &b);
        let s = cache.stats();
        assert_eq!(s.misses, misses_before + 1);
        assert!(cache.contains(&fb));
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 2, "inserting b evicted the new LRU");
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_unbounds() {
        let cache = PlanCache::new();
        let ac = acamar();
        for n in 4..9 {
            cache.get_or_analyze(&ac, &generate::poisson2d::<f64>(n, n));
        }
        assert_eq!(cache.stats().entries, 5);
        cache.set_capacity(2);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 3);
        cache.set_capacity(0);
        for n in 4..9 {
            cache.get_or_analyze(&ac, &generate::poisson2d::<f64>(n, n));
        }
        assert_eq!(cache.stats().entries, 5, "unbounded again");
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn touch_of_evicted_tier_does_not_refresh_surviving_sibling() {
        let cache = PlanCache::new();
        cache.set_capacity(2);
        let ac = acamar();
        let a = generate::poisson2d::<f64>(8, 8);
        let b = generate::poisson2d::<f64>(9, 9);
        let c = generate::poisson2d::<f64>(10, 10);
        let (fa, fb, fc) = (
            PatternFingerprint::of(&a),
            PatternFingerprint::of(&b),
            PatternFingerprint::of(&c),
        );
        let sink = TelemetrySink::disabled();
        // Warm `a` under both tiers; the deterministic entry is the LRU.
        cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Deterministic, &sink);
        cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Fast, &sink);
        // `b` evicts `(a, Deterministic)`; `(a, Fast)` survives.
        cache.get_or_analyze_with(&ac, &b, DeterminismPolicy::Deterministic, &sink);
        assert!(!cache.contains_policy(&fa, DeterminismPolicy::Deterministic));
        assert!(cache.contains_policy(&fa, DeterminismPolicy::Fast));
        // Touching the evicted tier is an honest `None`: no hit counted,
        // and crucially no recency refresh leaking onto the Fast sibling.
        let hits = cache.stats().hits;
        assert!(cache
            .touch(&fa, DeterminismPolicy::Deterministic, &sink)
            .is_none());
        assert_eq!(cache.stats().hits, hits, "a failed touch is not a hit");
        // `(a, Fast)` is still the LRU, so `c` must evict it — if the
        // failed touch had refreshed it, `(b, Deterministic)` would have
        // been evicted instead.
        cache.get_or_analyze_with(&ac, &c, DeterminismPolicy::Deterministic, &sink);
        assert!(!cache.contains_policy(&fa, DeterminismPolicy::Fast));
        assert!(cache.contains_policy(&fb, DeterminismPolicy::Deterministic));
        assert!(cache.contains_policy(&fc, DeterminismPolicy::Deterministic));
        // A touch of a *present* key still hits and refreshes as before.
        assert!(cache
            .touch(&fb, DeterminismPolicy::Deterministic, &sink)
            .is_some());
        assert_eq!(cache.stats().hits, hits + 1);
    }

    #[test]
    fn insert_artifacts_registers_pattern_for_hits() {
        let cache = PlanCache::new();
        let ac = acamar();
        let a = generate::poisson2d::<f64>(8, 8);
        let art = Arc::new(ac.analyze(&a));
        let sink = TelemetrySink::disabled();
        cache.insert_artifacts(
            &a,
            DeterminismPolicy::Deterministic,
            Arc::clone(&art),
            &sink,
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 1));
        let got = cache.get_or_analyze(&ac, &a);
        assert!(Arc::ptr_eq(&got, &art));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn policies_warm_independently_and_coexist() {
        let cache = PlanCache::new();
        let ac = acamar();
        let a = generate::poisson2d::<f64>(10, 10);
        let fp = PatternFingerprint::of(&a);
        let sink = TelemetrySink::disabled();
        let det = cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Deterministic, &sink);
        // The fast tier's first lookup is its own miss, not a hit on the
        // deterministic entry...
        let fast = cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Fast, &sink);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
        // ...and both entries verify per tier thereafter.
        assert!(cache.contains(&fp));
        assert!(cache.contains_policy(&fp, DeterminismPolicy::Deterministic));
        assert!(cache.contains_policy(&fp, DeterminismPolicy::Fast));
        let det2 = cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Deterministic, &sink);
        let fast2 = cache.get_or_analyze_with(&ac, &a, DeterminismPolicy::Fast, &sink);
        assert!(Arc::ptr_eq(&det, &det2));
        assert!(Arc::ptr_eq(&fast, &fast2));
        assert_eq!(cache.stats().hits, 2);
        // Plan compilation is policy-independent today: same artifacts,
        // distinct cache entries.
        assert_eq!(*det, *fast);
        assert!(cache.peek(&fp).is_some());
    }

    #[test]
    fn misses_accrue_analysis_time_and_hits_do_not() {
        let cache = PlanCache::new();
        let ac = acamar();
        let a = generate::poisson2d::<f64>(12, 12);
        assert_eq!(cache.stats().analysis_nanos, 0);
        cache.get_or_analyze(&ac, &a);
        let after_miss = cache.stats().analysis_nanos;
        assert!(after_miss > 0, "a miss runs (and times) the analysis");
        cache.get_or_analyze(&ac, &a);
        assert_eq!(cache.stats().analysis_nanos, after_miss);
    }
}
