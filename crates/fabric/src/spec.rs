//! FPGA device specification and resource/area arithmetic.

use std::ops::{Add, AddAssign, Mul, Sub};

/// Static description of an FPGA device.
///
/// Defaults model the paper's evaluation platform, a Xilinx Alveo U55C
/// (Virtex UltraScale+ XCU55C) — see [`FabricSpec::alveo_u55c`].
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Device name.
    pub name: &'static str,
    /// Total LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total DSP slices.
    pub dsps: u64,
    /// Total BRAM36 blocks.
    pub brams: u64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Kernel clock in MHz.
    pub clock_mhz: f64,
    /// ICAP partial-reconfiguration bandwidth in Gb/s (paper §VIII-A:
    /// 6.4 Gb/s at 200 MHz).
    pub icap_gbps: f64,
    /// Die area in mm² used for the FLOPS/mm² performance-efficiency
    /// metric (Fig. 10). UltraScale+ HBM dies are not publicly
    /// dimensioned; this is a documented estimate and only *ratios* of
    /// areas matter for every reproduced figure.
    pub die_area_mm2: f64,
}

impl FabricSpec {
    /// The paper's platform: Alveo U55C (XCU55C).
    pub fn alveo_u55c() -> Self {
        FabricSpec {
            name: "Alveo U55C",
            luts: 1_303_680,
            ffs: 2_607_360,
            dsps: 9_024,
            brams: 2_016,
            hbm_gbps: 460.0,
            clock_mhz: 300.0,
            icap_gbps: 6.4,
            die_area_mm2: 620.0,
        }
    }

    /// A larger HBM card for design-space exploration: Alveo U280
    /// (XCU280: 1,304k LUTs, 9,024 DSPs, HBM2 460 GB/s) — close to the
    /// U55C in fabric, with more BRAM columns.
    pub fn alveo_u280() -> Self {
        FabricSpec {
            name: "Alveo U280",
            luts: 1_304_000,
            ffs: 2_607_000,
            dsps: 9_024,
            brams: 2_160,
            hbm_gbps: 460.0,
            clock_mhz: 300.0,
            icap_gbps: 6.4,
            die_area_mm2: 640.0,
        }
    }

    /// A mid-range device for scaling studies: Alveo U50 (XCU50:
    /// 872k LUTs, 5,952 DSPs, HBM2 316 GB/s).
    pub fn alveo_u50() -> Self {
        FabricSpec {
            name: "Alveo U50",
            luts: 872_000,
            ffs: 1_743_000,
            dsps: 5_952,
            brams: 1_344,
            hbm_gbps: 316.0,
            clock_mhz: 300.0,
            icap_gbps: 6.4,
            die_area_mm2: 430.0,
        }
    }

    /// Converts kernel cycles to seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Bytes deliverable from HBM per kernel clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.hbm_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// Cycles (at the kernel clock) to stream `bits` of partial bitstream
    /// through ICAP.
    pub fn icap_cycles(&self, bits: u64) -> u64 {
        let seconds = bits as f64 / (self.icap_gbps * 1e9);
        (seconds * self.clock_mhz * 1e6).ceil() as u64
    }

    /// The full device as a resource vector.
    pub fn total_resources(&self) -> ResourceVector {
        ResourceVector {
            lut: self.luts,
            ff: self.ffs,
            dsp: self.dsps,
            bram: self.brams,
        }
    }

    /// Die area attributed to `rv`, in mm².
    ///
    /// The die is partitioned by resource family with weights reflecting a
    /// typical UltraScale+ floorplan (CLB fabric 55 %, DSP columns 15 %,
    /// BRAM columns 20 %, the remaining 10 % fixed infrastructure that is
    /// not attributed to user logic); each family contributes
    /// proportionally to its utilization.
    pub fn area_mm2(&self, rv: &ResourceVector) -> f64 {
        let clb = 0.55 * 0.5 * (rv.lut as f64 / self.luts as f64 + rv.ff as f64 / self.ffs as f64);
        let dsp = 0.15 * rv.dsp as f64 / self.dsps as f64;
        let bram = 0.20 * rv.bram as f64 / self.brams as f64;
        self.die_area_mm2 * (clb + dsp + bram)
    }
}

/// A bundle of FPGA resources (LUT/FF/DSP/BRAM), used for unit costs,
/// region sizing, and area accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ResourceVector {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// BRAM36 blocks.
    pub bram: u64,
}

impl ResourceVector {
    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// `true` if every component fits within the device totals.
    pub fn fits_within(&self, spec: &FabricSpec) -> bool {
        self.lut <= spec.luts
            && self.ff <= spec.ffs
            && self.dsp <= spec.dsps
            && self.bram <= spec.brams
    }

    /// Component-wise maximum.
    pub fn max(self, other: Self) -> Self {
        ResourceVector {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            dsp: self.dsp.max(other.dsp),
            bram: self.bram.max(other.bram),
        }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: Self) -> Self {
        ResourceVector {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
            bram: self.bram + rhs.bram,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    fn sub(self, rhs: Self) -> Self {
        ResourceVector {
            lut: self.lut.saturating_sub(rhs.lut),
            ff: self.ff.saturating_sub(rhs.ff),
            dsp: self.dsp.saturating_sub(rhs.dsp),
            bram: self.bram.saturating_sub(rhs.bram),
        }
    }
}

impl Mul<u64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: u64) -> Self {
        ResourceVector {
            lut: self.lut * k,
            ff: self.ff * k,
            dsp: self.dsp * k,
            bram: self.bram * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_spec_sanity() {
        let s = FabricSpec::alveo_u55c();
        assert_eq!(s.dsps, 9024);
        assert!(s.cycles_to_seconds(300_000_000) - 1.0 < 1e-9);
        assert!(s.bytes_per_cycle() > 1000.0); // ~1.5 kB/cycle
    }

    #[test]
    fn alternative_devices_are_ordered_by_size() {
        let u50 = FabricSpec::alveo_u50();
        let u55c = FabricSpec::alveo_u55c();
        let u280 = FabricSpec::alveo_u280();
        assert!(u50.dsps < u55c.dsps);
        assert!(u55c.brams <= u280.brams);
        assert!(u50.hbm_gbps < u55c.hbm_gbps);
        // same area model applies to all
        let probe = ResourceVector {
            lut: 10_000,
            ff: 20_000,
            dsp: 100,
            bram: 20,
        };
        assert!(u50.area_mm2(&probe) > 0.0);
        assert!(u280.area_mm2(&probe) > 0.0);
    }

    #[test]
    fn icap_time_matches_bandwidth() {
        let s = FabricSpec::alveo_u55c();
        // 6.4 Gb / 6.4 Gb/s = 1 s = 300e6 cycles
        assert_eq!(s.icap_cycles(6_400_000_000), 300_000_000);
        assert_eq!(s.icap_cycles(0), 0);
    }

    #[test]
    fn resource_arithmetic() {
        let a = ResourceVector {
            lut: 100,
            ff: 200,
            dsp: 5,
            bram: 2,
        };
        let b = a + a;
        assert_eq!(b.lut, 200);
        assert_eq!(
            a * 3,
            ResourceVector {
                lut: 300,
                ff: 600,
                dsp: 15,
                bram: 6
            }
        );
        assert_eq!((b - a), a);
        // saturating subtraction never underflows
        assert_eq!((a - b).lut, 0);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn fits_within_device() {
        let s = FabricSpec::alveo_u55c();
        assert!(ResourceVector {
            lut: 1000,
            ff: 1000,
            dsp: 10,
            bram: 4
        }
        .fits_within(&s));
        assert!(!ResourceVector {
            lut: u64::MAX,
            ..Default::default()
        }
        .fits_within(&s));
    }

    #[test]
    fn area_is_monotone_and_bounded() {
        let s = FabricSpec::alveo_u55c();
        let small = ResourceVector {
            lut: 1000,
            ff: 2000,
            dsp: 10,
            bram: 4,
        };
        let big = small * 10;
        assert!(s.area_mm2(&small) > 0.0);
        assert!(s.area_mm2(&big) > s.area_mm2(&small));
        // the whole device maps to at most the die area
        let full = s.total_resources();
        assert!(s.area_mm2(&full) <= s.die_area_mm2);
        assert!(s.area_mm2(&full) >= 0.85 * s.die_area_mm2 * 0.9); // ~90% attributed
    }
}
