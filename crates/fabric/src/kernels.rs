//! [`FabricKernels`]: the hardware-modeling kernel executor.
//!
//! Runs the solver algorithms numerically (bit-identical to
//! [`SoftwareKernels`](acamar_solvers::SoftwareKernels)) while charging
//! cycles, MAC-slot utilization, reconfiguration time, and area to a
//! behavioral model of the paper's accelerator datapath.

use crate::cost::{
    dense_vector_unit, spmv_engine, DENSE_VECTOR_WIDTH, PIPELINE_DEPTH, REDUCTION_LATENCY,
};
use crate::reconfig::{ReconfigController, RegionKind};
use crate::spec::{FabricSpec, ResourceVector};
use crate::spmv::{execute_rows, SpmvExecution};
use crate::trace::{ExecutionTrace, TraceEvent};
use acamar_faultline::{FaultContext, FaultInjector};
use acamar_solvers::{Kernels, OpCounts, Phase, WorkspaceHandle};
use acamar_sparse::{
    simd, BandHint, CompiledSpmv, CompiledSptrsv, CsrMatrix, DeterminismPolicy, Scalar,
};
use acamar_telemetry::{Counter, EventKind, TelemetrySink};
use std::ops::Range;
use std::sync::Arc;

/// Fixed cycle overhead per dense kernel invocation (argument setup,
/// pipeline ramp for short vector loops).
const DENSE_OVERHEAD: u64 = 8;

/// One contiguous row range executed at a fixed unroll factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Rows covered by this entry.
    pub rows: Range<usize>,
    /// MAC lanes configured while streaming those rows.
    pub unroll: usize,
}

/// Per-set unroll-factor plan for the Dynamic SpMV Kernel.
///
/// Produced by Acamar's Fine-Grained Reconfiguration unit (or
/// [`UnrollSchedule::uniform`] for a static baseline) and consumed by
/// [`FabricKernels`]: each loop-phase SpMV walks the entries in order,
/// reconfiguring the nested DFX region whenever the unroll factor changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrollSchedule {
    entries: Vec<ScheduleEntry>,
}

impl UnrollSchedule {
    /// A single-entry schedule covering `nrows` rows at `unroll` — the
    /// static baseline configuration (`SpMV_URB`).
    ///
    /// # Panics
    ///
    /// Panics if `unroll == 0`.
    pub fn uniform(nrows: usize, unroll: usize) -> Self {
        assert!(unroll > 0, "unroll factor must be positive");
        UnrollSchedule {
            entries: vec![ScheduleEntry {
                rows: 0..nrows,
                unroll,
            }],
        }
    }

    /// Builds a schedule from entries, validating contiguous coverage of
    /// `0..nrows` and positive unroll factors.
    ///
    /// # Panics
    ///
    /// Panics if entries do not tile `0..nrows` contiguously or any unroll
    /// factor is zero.
    pub fn from_entries(nrows: usize, entries: Vec<ScheduleEntry>) -> Self {
        let mut next = 0usize;
        for e in &entries {
            assert_eq!(e.rows.start, next, "schedule entries must be contiguous");
            assert!(e.rows.end >= e.rows.start, "bad entry range");
            assert!(e.unroll > 0, "unroll factor must be positive");
            next = e.rows.end;
        }
        assert_eq!(next, nrows, "schedule must cover all rows");
        UnrollSchedule { entries }
    }

    /// The schedule entries in row order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of unroll-factor *changes* while walking the schedule once
    /// (the per-pass reconfiguration count, assuming the engine already
    /// holds the first entry's configuration).
    pub fn changes_per_pass(&self) -> usize {
        self.entries
            .windows(2)
            .filter(|w| w[0].unroll != w[1].unroll)
            .count()
    }

    /// Largest unroll factor in the schedule (sizes the DFX region).
    pub fn max_unroll(&self) -> usize {
        self.entries.iter().map(|e| e.unroll).max().unwrap_or(1)
    }

    /// The schedule as band hints for [`CompiledSpmv::compile`]: the host
    /// plan compiler specializes each entry's rows without ever crossing an
    /// entry boundary, so the MSID set structure survives into the compiled
    /// plan's partition points.
    pub fn band_hints(&self) -> Vec<BandHint> {
        self.entries
            .iter()
            .map(|e| BandHint {
                rows: e.rows.clone(),
                unroll: e.unroll,
            })
            .collect()
    }
}

/// Cycle totals by activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles in the SpMV engine (issue + row overhead + pipeline fill).
    pub spmv: u64,
    /// Cycles in the dense vector units.
    pub dense: u64,
    /// Cycles streaming partial bitstreams through ICAP.
    pub reconfig: u64,
}

impl CycleBreakdown {
    /// All cycles.
    pub fn total(&self) -> u64 {
        self.spmv + self.dense + self.reconfig
    }

    /// Sums two breakdowns (e.g. runs merged across engine workers).
    pub fn merge(&self, other: &CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            spmv: self.spmv + other.spmv,
            dense: self.dense + other.dense,
            reconfig: self.reconfig + other.reconfig,
        }
    }

    /// Compute-only cycles (excluding reconfiguration).
    pub fn compute(&self) -> u64 {
        self.spmv + self.dense
    }

    /// Fraction of compute cycles spent in SpMV (the paper's Fig. 1).
    pub fn spmv_share(&self) -> f64 {
        if self.compute() == 0 {
            0.0
        } else {
            self.spmv as f64 / self.compute() as f64
        }
    }
}

/// Statistics extracted from a finished [`FabricKernels`] run.
#[derive(Debug, Clone)]
pub struct FabricRunStats {
    /// Cycle totals.
    pub cycles: CycleBreakdown,
    /// Aggregate loop-phase SpMV execution (drives Eq. 5 utilization).
    pub spmv: SpmvExecution,
    /// Aggregate initialize-phase SpMV execution (static engine).
    pub init_spmv: SpmvExecution,
    /// Peak-capacity FLOPs of the engaged units over compute cycles
    /// (denominator of achieved-throughput, Fig. 9).
    pub capacity_flops: f64,
    /// Useful FLOPs executed.
    pub useful_flops: u64,
    /// SpMV-kernel reconfiguration events.
    pub spmv_reconfig_events: usize,
    /// Time-weighted area of the instantiated logic, mm² (dense units +
    /// whichever SpMV engine was loaded, weighted by compute cycles).
    pub avg_area_mm2: f64,
    /// Peak instantiated area, mm².
    pub peak_area_mm2: f64,
    /// Whether the initialize phase used its static SpMV engine.
    pub used_init_spmv: bool,
    /// ICAP swaps of the nested SpMV region that aborted mid-stream
    /// (only nonzero under fault injection).
    pub reconfig_aborts: usize,
    /// Loop-phase SpMV cycles run on a larger engine than the schedule
    /// planned, after an abort degraded the kernel to its static
    /// max-unroll configuration — the area-efficiency price of surviving
    /// a reconfiguration failure.
    pub lost_area_cycles: u64,
    /// Whether a reconfiguration failure pinned the Dynamic SpMV Kernel
    /// to its static max-unroll fallback for the rest of the run.
    pub degraded_to_static: bool,
}

impl FabricRunStats {
    /// Achieved fraction of peak throughput over compute cycles, in
    /// `[0, 1]` (Fig. 9).
    pub fn achieved_throughput(&self) -> f64 {
        if self.capacity_flops == 0.0 {
            0.0
        } else {
            (self.useful_flops as f64 / self.capacity_flops).min(1.0)
        }
    }

    /// The identity for [`FabricRunStats::merge`]: a run that did nothing.
    pub fn empty() -> FabricRunStats {
        FabricRunStats {
            cycles: CycleBreakdown::default(),
            spmv: SpmvExecution::default(),
            init_spmv: SpmvExecution::default(),
            capacity_flops: 0.0,
            useful_flops: 0,
            spmv_reconfig_events: 0,
            avg_area_mm2: 0.0,
            peak_area_mm2: 0.0,
            used_init_spmv: false,
            reconfig_aborts: 0,
            lost_area_cycles: 0,
            degraded_to_static: false,
        }
    }

    /// Merges statistics from two independent runs — e.g. per-thread
    /// aggregates in the batch engine, or repeated solves on one device.
    ///
    /// Additive fields (cycles, FLOPs, SpMV aggregates, reconfiguration
    /// events) sum; `avg_area_mm2` recombines weighted by each side's
    /// compute cycles (so the merged value is still a time-weighted
    /// average); `peak_area_mm2` takes the max.
    pub fn merge(&self, other: &FabricRunStats) -> FabricRunStats {
        let (ca, cb) = (self.cycles.compute() as f64, other.cycles.compute() as f64);
        let avg_area = if ca + cb == 0.0 {
            self.avg_area_mm2.max(other.avg_area_mm2)
        } else {
            (self.avg_area_mm2 * ca + other.avg_area_mm2 * cb) / (ca + cb)
        };
        FabricRunStats {
            cycles: self.cycles.merge(&other.cycles),
            spmv: self.spmv.merge(&other.spmv),
            init_spmv: self.init_spmv.merge(&other.init_spmv),
            capacity_flops: self.capacity_flops + other.capacity_flops,
            useful_flops: self.useful_flops + other.useful_flops,
            spmv_reconfig_events: self.spmv_reconfig_events + other.spmv_reconfig_events,
            avg_area_mm2: avg_area,
            peak_area_mm2: self.peak_area_mm2.max(other.peak_area_mm2),
            used_init_spmv: self.used_init_spmv || other.used_init_spmv,
            reconfig_aborts: self.reconfig_aborts + other.reconfig_aborts,
            lost_area_cycles: self.lost_area_cycles + other.lost_area_cycles,
            degraded_to_static: self.degraded_to_static || other.degraded_to_static,
        }
    }
}

/// Hardware-modeling kernel executor for one solve on the fabric.
///
/// # Examples
///
/// ```
/// use acamar_fabric::{FabricKernels, FabricSpec, UnrollSchedule};
/// use acamar_solvers::{conjugate_gradient, ConvergenceCriteria};
/// use acamar_sparse::generate;
///
/// let a = generate::poisson2d::<f32>(8, 8);
/// let schedule = UnrollSchedule::uniform(a.nrows(), 4);
/// let mut hw = FabricKernels::new(FabricSpec::alveo_u55c(), schedule, 4);
/// let report = conjugate_gradient(&a, &vec![1.0; 64], None,
///     &ConvergenceCriteria::paper(), &mut hw)?;
/// assert!(report.converged());
/// let stats = hw.finish();
/// assert!(stats.cycles.spmv_share() > 0.3); // SpMV dominates (Fig. 1)
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FabricKernels {
    spec: FabricSpec,
    schedule: UnrollSchedule,
    init_unroll: usize,
    phase: Phase,
    /// Unroll factor currently loaded in the nested DFX region.
    current_unroll: Option<usize>,
    counts: OpCounts,
    cycles: CycleBreakdown,
    reconfig: ReconfigController,
    spmv_agg: SpmvExecution,
    init_spmv_agg: SpmvExecution,
    capacity_flops: f64,
    /// Σ engine-area x spmv-cycles, for time-weighted area.
    area_cycle_product: f64,
    peak_engine_area: f64,
    used_init_spmv: bool,
    overlap_reconfig: bool,
    last_segment_cycles: u64,
    trace: Option<ExecutionTrace>,
    /// Fault-injection seam; `None` (the default) leaves every hook inert.
    fault: Option<FaultContext>,
    /// Solver-attempt counter (bumped by [`FabricKernels::set_schedule`])
    /// keying per-attempt fault decisions.
    attempt: u64,
    /// Raw draw of the stuck SpMV datapath bit afflicting the current
    /// attempt, if one was injected.
    stuck_raw: Option<u64>,
    /// Set once an ICAP abort pinned the nested region to max-unroll.
    degraded: bool,
    /// Loop-phase cycles run on an oversized engine while degraded.
    lost_area_cycles: u64,
    /// Ordinal of the next scheduled nested-region swap (fault site key).
    swap_site: u64,
    /// Host-side buffer pool backing [`Kernels::acquire_buffer`]; `None`
    /// falls back to plain allocation (cycle model unaffected either way —
    /// host buffer traffic is not fabric work).
    workspace: Option<WorkspaceHandle>,
    /// Compiled host execution plan for the solve's coefficient matrix.
    /// Purely a host optimization: the numeric result is bitwise identical
    /// to the generic CSR walk, and cycle/FLOP accounting are unchanged.
    /// Operand matrices that don't match the plan's shape (e.g. Jacobi's
    /// iteration matrix) take the generic path.
    compiled: Option<Arc<CompiledSpmv>>,
    /// Structured telemetry sink. Disabled by default; every emission site
    /// is a single branch when no recorder is installed, so the hot solve
    /// loop is unchanged (numerics, cycles, and allocations alike).
    telemetry: TelemetrySink,
    /// Determinism tier for host arithmetic. `Deterministic` (the default)
    /// keeps every reduction in serial CSR order — the bitwise replay
    /// contract. `Fast` runs plan-backed SpMV and dense reductions through
    /// the 4-lane reassociated kernels; cycle/FLOP charges and fault-flip
    /// ordering are identical on both tiers (the model charges the same
    /// fabric work either way — only host summation order changes).
    policy: DeterminismPolicy,
}

impl FabricKernels {
    /// Creates an executor with the given loop-phase `schedule` and a
    /// static initialize-phase engine of `init_unroll` lanes.
    ///
    /// The nested DFX region is assumed pre-loaded with the schedule's
    /// first configuration (the host writes it together with the solver
    /// bitstream), so the first pass pays `changes_per_pass()` events.
    ///
    /// # Panics
    ///
    /// Panics if `init_unroll == 0`.
    pub fn new(spec: FabricSpec, schedule: UnrollSchedule, init_unroll: usize) -> Self {
        assert!(init_unroll > 0, "init unroll must be positive");
        let first = schedule.entries().first().map(|e| e.unroll);
        let reconfig = ReconfigController::new(spec.clone());
        FabricKernels {
            spec,
            schedule,
            init_unroll,
            phase: Phase::Initialize,
            current_unroll: first,
            counts: OpCounts::default(),
            cycles: CycleBreakdown::default(),
            reconfig,
            spmv_agg: SpmvExecution::default(),
            init_spmv_agg: SpmvExecution::default(),
            capacity_flops: 0.0,
            area_cycle_product: 0.0,
            peak_engine_area: 0.0,
            used_init_spmv: false,
            overlap_reconfig: false,
            last_segment_cycles: 0,
            trace: None,
            fault: None,
            attempt: 0,
            stuck_raw: None,
            degraded: false,
            lost_area_cycles: 0,
            swap_site: 0,
            workspace: None,
            compiled: None,
            telemetry: TelemetrySink::disabled(),
            policy: DeterminismPolicy::Deterministic,
        }
    }

    /// Selects the determinism tier for host arithmetic (see
    /// [`DeterminismPolicy`]). Under `Fast`, plan-backed SpMV and the dense
    /// reductions (`dot`, the fused `spmv_dot` tail, `axpy_normsq`) use the
    /// 4-lane reassociated kernels; element-wise updates, cycle and FLOP
    /// charges, and the stuck-bit fault-flip ordering are unchanged, so
    /// fault replay still corrupts the same element of `y` before any
    /// fused reduction reads it.
    pub fn with_policy(mut self, policy: DeterminismPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active determinism tier.
    pub fn policy(&self) -> DeterminismPolicy {
        self.policy
    }

    /// Installs a shared host-side workspace so solver scratch vectors are
    /// recycled across solves instead of heap-allocated each time. Purely a
    /// host optimization: cycle and FLOP accounting are unchanged.
    pub fn with_workspace(mut self, workspace: WorkspaceHandle) -> Self {
        self.workspace = Some(workspace);
        self
    }

    /// Installs a compiled host SpMV execution plan (normally the one the
    /// analysis phase compiled from this solve's MSID schedule, shared via
    /// the plan cache). Host arithmetic for matching matrices runs through
    /// the plan's format-specialized band kernels — bitwise identical to
    /// the generic walk — while cycle modeling, fault injection, and all
    /// accounting are untouched.
    pub fn with_compiled_plan(mut self, plan: Arc<CompiledSpmv>) -> Self {
        self.compiled = Some(plan);
        self
    }

    /// Installs a fault-injection context: subsequent solver attempts may
    /// suffer stuck SpMV datapath bits and ICAP reconfiguration aborts,
    /// per the context's plan. Without this call every hook is inert and
    /// execution is bit-identical to a harness-free build.
    pub fn with_fault_context(mut self, ctx: FaultContext) -> Self {
        self.fault = Some(ctx);
        self
    }

    /// Whether an ICAP abort has degraded the Dynamic SpMV Kernel to its
    /// static max-unroll fallback for the rest of this run.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Enables a cycle-stamped execution trace holding up to
    /// `max_events` records (see [`ExecutionTrace`]).
    pub fn with_trace(mut self, max_events: usize) -> Self {
        self.trace = Some(ExecutionTrace::with_capacity(max_events));
        self
    }

    /// The execution trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ExecutionTrace> {
        self.trace.as_ref()
    }

    /// Routes structured telemetry (reconfiguration events, per-set SpMV
    /// segments, phase/iteration marks, sampled residuals) into `sink`.
    ///
    /// Every telemetry [`EventKind::Reconfig`] on the SpMV region
    /// corresponds one-to-one with an ICAP swap counted by
    /// [`FabricRunStats::spmv_reconfig_events`], and every
    /// [`EventKind::ReconfigAbort`] with [`FabricRunStats::reconfig_aborts`],
    /// so a drained trace reconstructs the run's reconfiguration ledger
    /// exactly. Observational only: numerics, cycle charges, and fault
    /// replay are unchanged with any sink installed.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    fn record(&mut self, e: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(e);
        }
    }

    /// Enables double-buffered (overlapped) partial reconfiguration: the
    /// bitstream for the next set streams through ICAP *while* the current
    /// set computes, so only the portion of the ICAP time exceeding the
    /// previous segment's compute stalls the pipeline. An extension beyond
    /// the paper's design (which serializes reconfiguration), useful for
    /// the `ablation_overlap` experiment.
    pub fn with_overlap(mut self, enabled: bool) -> Self {
        self.overlap_reconfig = enabled;
        self
    }

    /// Replaces the loop-phase schedule (used by the Solver Modifier when
    /// it restarts with a different solver on the same matrix). Marks the
    /// start of a new solver attempt for fault-injection purposes: a
    /// stuck datapath bit is rolled per attempt and cleared by the region
    /// rewrite that accompanies the solver swap.
    pub fn set_schedule(&mut self, schedule: UnrollSchedule) {
        self.attempt += 1;
        if self.degraded {
            // Stay static: re-pin to the new schedule's largest engine
            // with one full-region recovery swap if the size changes.
            let max = schedule.max_unroll();
            if self.current_unroll != Some(max) {
                let cycles = self
                    .reconfig
                    .reconfigure(RegionKind::SpmvKernel, &spmv_engine(max));
                self.cycles.reconfig += cycles;
                self.current_unroll = Some(max);
                self.telemetry.emit(EventKind::Reconfig {
                    region: acamar_telemetry::Region::SpmvKernel,
                    unroll: max.min(u8::MAX as usize) as u8,
                    set: 0,
                });
                self.telemetry.counter_add(Counter::SpmvReconfigs, 1);
            }
        } else {
            self.current_unroll = schedule.entries().first().map(|e| e.unroll);
        }
        self.schedule = schedule;
        self.stuck_raw = self
            .fault
            .as_ref()
            .and_then(|c| c.injector().stuck_flip(c.job(), c.site(self.attempt)));
    }

    /// Charges a reconfiguration of the *outer* solver region holding
    /// `module` (Acamar's Solver Decision loop).
    pub fn charge_solver_reconfig(&mut self, module: &ResourceVector) {
        let cycles = self.reconfig.reconfigure(RegionKind::Solver, module);
        self.cycles.reconfig += cycles;
        self.telemetry.emit(EventKind::Reconfig {
            region: acamar_telemetry::Region::Solver,
            unroll: 0,
            set: 0,
        });
        self.telemetry.counter_add(Counter::SolverReconfigs, 1);
    }

    /// The device specification.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The reconfiguration event log.
    pub fn reconfig_controller(&self) -> &ReconfigController {
        &self.reconfig
    }

    /// Current cycle totals (also available from [`FabricKernels::finish`]).
    pub fn cycles(&self) -> CycleBreakdown {
        self.cycles
    }

    /// Finalizes the run and returns its statistics.
    pub fn finish(self) -> FabricRunStats {
        let dense_area = self.spec.area_mm2(&dense_vector_unit());
        let control_area = self.spec.area_mm2(&crate::cost::solver_control_unit());
        let init_area = if self.used_init_spmv {
            self.spec.area_mm2(&spmv_engine(self.init_unroll))
        } else {
            0.0
        };
        let compute_cycles = self.cycles.compute().max(1) as f64;
        // Dense + control units are resident for the whole run; the
        // dynamic engine contributes its time-weighted area; cycles where
        // no engine ran (pure dense work) re-use the last loaded engine,
        // approximated by weighting only spmv cycles.
        let avg_engine_area = self.area_cycle_product / compute_cycles;
        let resident = dense_area + control_area + init_area;
        let avg_area = resident + avg_engine_area.max(self.idle_engine_area());
        let peak_area = resident + self.peak_engine_area.max(self.idle_engine_area());
        FabricRunStats {
            cycles: self.cycles,
            spmv: self.spmv_agg,
            init_spmv: self.init_spmv_agg,
            capacity_flops: self.capacity_flops,
            useful_flops: self.counts.total_flops(),
            spmv_reconfig_events: self.reconfig.count(RegionKind::SpmvKernel),
            avg_area_mm2: avg_area,
            peak_area_mm2: peak_area,
            used_init_spmv: self.used_init_spmv,
            reconfig_aborts: self.reconfig.abort_count(),
            lost_area_cycles: self.lost_area_cycles,
            degraded_to_static: self.degraded,
        }
    }

    /// Handles an injected ICAP abort while swapping toward
    /// `target_unroll`: charges the wasted stream, performs one reliable
    /// full-region recovery swap to the schedule's max unroll, and pins
    /// the region there for the rest of the run.
    fn abort_and_degrade(&mut self, target_unroll: usize) {
        let wasted = self
            .reconfig
            .record_abort(RegionKind::SpmvKernel, &spmv_engine(target_unroll));
        let stall = if self.overlap_reconfig {
            wasted.saturating_sub(self.last_segment_cycles)
        } else {
            wasted
        };
        let at = self.cycles.total();
        self.record(TraceEvent::Reconfig {
            region: RegionKind::SpmvKernel,
            cycle: at,
            duration: stall,
        });
        self.telemetry.emit(EventKind::ReconfigAbort {
            region: acamar_telemetry::Region::SpmvKernel,
        });
        self.telemetry.counter_add(Counter::ReconfigAborts, 1);
        self.cycles.reconfig += stall;
        let max = self.schedule.max_unroll();
        if self.current_unroll != Some(max) {
            let cycles = self
                .reconfig
                .reconfigure(RegionKind::SpmvKernel, &spmv_engine(max));
            let at = self.cycles.total();
            self.record(TraceEvent::Reconfig {
                region: RegionKind::SpmvKernel,
                cycle: at,
                duration: cycles,
            });
            self.telemetry.emit(EventKind::Reconfig {
                region: acamar_telemetry::Region::SpmvKernel,
                unroll: max.min(u8::MAX as usize) as u8,
                set: 0,
            });
            self.telemetry.counter_add(Counter::SpmvReconfigs, 1);
            self.cycles.reconfig += cycles;
            self.current_unroll = Some(max);
        }
        self.degraded = true;
    }

    /// Area of the engine sitting (idle or busy) in the DFX region between
    /// SpMV calls: the last loaded configuration, or the first scheduled.
    fn idle_engine_area(&self) -> f64 {
        match self.current_unroll {
            Some(u) => self.spec.area_mm2(&spmv_engine(u)),
            None => 0.0,
        }
    }

    fn charge_dense(&mut self, n: usize, flops_per_elem: u64, reduction: bool) {
        let w = DENSE_VECTOR_WIDTH as u64;
        let mut cyc = (n as u64).div_ceil(w) + DENSE_OVERHEAD;
        if reduction {
            cyc += REDUCTION_LATENCY;
        }
        self.cycles.dense += cyc;
        self.capacity_flops += cyc as f64 * 2.0 * w as f64;
        self.counts.dense_calls += 1;
        self.counts.dense_flops += flops_per_elem * n as u64;
    }

    fn run_engine(&mut self, a: &CsrMatrix<impl Scalar>, rows: Range<usize>, unroll: usize) {
        let exec = execute_rows(a, rows, unroll, &self.spec);
        self.cycles.spmv += exec.cycles;
        // Peak capacity counts *issued* MAC slots (2 FLOPs each), matching
        // the paper's Eq. 5 utilization view: row-transition and memory
        // stall cycles are latency, not wasted compute slots.
        self.capacity_flops += exec.slots_issued as f64 * 2.0;
        let engine_area = self.spec.area_mm2(&spmv_engine(unroll));
        self.area_cycle_product += engine_area * exec.cycles as f64;
        self.peak_engine_area = self.peak_engine_area.max(engine_area);
        match self.phase {
            Phase::Initialize => self.init_spmv_agg = self.init_spmv_agg.merge(&exec),
            Phase::Loop => self.spmv_agg = self.spmv_agg.merge(&exec),
        }
    }
}

impl<T: Scalar> Kernels<T> for FabricKernels {
    fn spmv(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
        match &self.compiled {
            Some(plan) if plan.matches(a) => {
                if self.policy.is_fast() {
                    plan.execute_fast(a, x, y).expect("spmv shape mismatch");
                } else {
                    plan.execute(a, x, y).expect("spmv shape mismatch");
                }
            }
            _ => a.mul_vec_into(x, y).expect("spmv shape mismatch"),
        }
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
        self.cycles.spmv += PIPELINE_DEPTH;

        match self.phase {
            Phase::Initialize => {
                // Static un-reconfigured engine (paper §IV-B, Initialize
                // unit): one pass at the fixed init unroll factor.
                self.used_init_spmv = true;
                self.run_engine(a, 0..a.nrows(), self.init_unroll);
            }
            Phase::Loop => {
                // Dynamic SpMV Kernel: walk the schedule, reconfiguring
                // the nested region on unroll changes. A swap may suffer
                // an injected ICAP abort, after which the region is
                // pinned to max unroll and the walk stops reconfiguring.
                // Walk by index: cloning one `ScheduleEntry` (a row range
                // plus an unroll factor) is stack-only, so the hot solve
                // loop performs no heap allocation here.
                for idx in 0..self.schedule.entries().len() {
                    let e = self.schedule.entries()[idx].clone();
                    if e.rows.end > a.nrows() {
                        // Defensive clamp: schedules are built for A, and
                        // Jacobi's iteration matrix T has the same shape.
                        continue;
                    }
                    if !self.degraded && self.current_unroll != Some(e.unroll) {
                        let site = self.swap_site;
                        self.swap_site += 1;
                        let aborts = self
                            .fault
                            .as_ref()
                            .is_some_and(|c| c.injector().reconfig_aborts(c.job(), c.site(site)));
                        if aborts {
                            self.abort_and_degrade(e.unroll);
                        } else {
                            let cycles = self
                                .reconfig
                                .reconfigure(RegionKind::SpmvKernel, &spmv_engine(e.unroll));
                            let stall = if self.overlap_reconfig {
                                cycles.saturating_sub(self.last_segment_cycles)
                            } else {
                                cycles
                            };
                            let at = self.cycles.total();
                            self.record(TraceEvent::Reconfig {
                                region: RegionKind::SpmvKernel,
                                cycle: at,
                                duration: stall,
                            });
                            self.telemetry.emit(EventKind::Reconfig {
                                region: acamar_telemetry::Region::SpmvKernel,
                                unroll: e.unroll.min(u8::MAX as usize) as u8,
                                set: idx as u32,
                            });
                            self.telemetry.counter_add(Counter::SpmvReconfigs, 1);
                            self.cycles.reconfig += stall;
                            self.current_unroll = Some(e.unroll);
                        }
                    }
                    let engaged = if self.degraded {
                        self.current_unroll.unwrap_or(e.unroll)
                    } else {
                        e.unroll
                    };
                    let before = self.cycles.spmv;
                    let at = self.cycles.total();
                    self.run_engine(a, e.rows.clone(), engaged);
                    self.last_segment_cycles = self.cycles.spmv - before;
                    if engaged != e.unroll {
                        self.lost_area_cycles += self.last_segment_cycles;
                    }
                    self.record(TraceEvent::SpmvSegment {
                        rows: e.rows.clone(),
                        unroll: engaged,
                        cycle: at,
                        duration: self.last_segment_cycles,
                    });
                    self.telemetry.emit(EventKind::SpmvSegment {
                        set: idx as u32,
                        rows: e.rows.len().min(u32::MAX as usize) as u32,
                        unroll: engaged.min(u8::MAX as usize) as u8,
                        cycles: self.last_segment_cycles,
                    });
                    self.telemetry.counter_add(Counter::SpmvSegments, 1);
                }
                if let Some(raw) = self.stuck_raw {
                    FaultInjector::apply_flip(raw, y);
                }
            }
        }
    }

    fn dot(&mut self, x: &[T], y: &[T]) -> T {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        self.charge_dense(x.len(), 2, true);
        if self.policy.is_fast() {
            return simd::dot_fast(x, y);
        }
        x.iter().zip(y).fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
    }

    fn spmv_dot(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T], z: &[T]) -> T {
        // Fusion saves a host memory pass, not fabric work: the dense unit
        // still streams `y` through its reduction tree, so the charge is
        // exactly the unfused SpMV + dot pair. The dot runs after the full
        // SpMV (including any injected stuck-bit flip on `y`) so fault
        // replay is byte-identical to the unfused path.
        Kernels::<T>::spmv(self, a, x, y);
        assert_eq!(y.len(), z.len(), "dot length mismatch");
        self.charge_dense(y.len(), 2, true);
        if self.policy.is_fast() {
            return simd::dot_fast(y, z);
        }
        y.iter().zip(z).fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
    }

    fn axpy_normsq(&mut self, alpha: T, x: &[T], y: &mut [T]) -> T {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        // Charged as the unfused axpy + dot(y, y) pair; the host loop is a
        // single pass with the same per-element operation order.
        self.charge_dense(x.len(), 2, false);
        self.charge_dense(x.len(), 2, true);
        if self.policy.is_fast() {
            return simd::axpy_normsq_fast(alpha, x, y);
        }
        let mut acc = T::ZERO;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
            acc += *yi * *yi;
        }
        acc
    }

    fn acquire_buffer(&mut self, n: usize) -> Vec<T> {
        match &self.workspace {
            Some(ws) => ws.take(n),
            None => vec![T::ZERO; n],
        }
    }

    fn release_buffer(&mut self, buf: Vec<T>) {
        if let Some(ws) = &self.workspace {
            ws.give(buf);
        }
    }

    fn axpy(&mut self, alpha: T, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        self.charge_dense(x.len(), 2, false);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn xpby(&mut self, x: &[T], beta: T, y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "xpby length mismatch");
        self.charge_dense(x.len(), 2, false);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
    }

    fn scale(&mut self, alpha: T, x: &mut [T]) {
        self.charge_dense(x.len(), 1, false);
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    fn copy(&mut self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), dst.len(), "copy length mismatch");
        // Buffer move: charged as a streaming pass, no FLOPs.
        let w = DENSE_VECTOR_WIDTH as u64;
        self.cycles.dense += (src.len() as u64).div_ceil(w) + DENSE_OVERHEAD;
        self.counts.dense_calls += 1;
        dst.copy_from_slice(src);
    }

    fn hadamard(&mut self, a: &[T], x: &[T], y: &mut [T]) {
        assert_eq!(a.len(), x.len(), "hadamard length mismatch");
        assert_eq!(a.len(), y.len(), "hadamard length mismatch");
        self.charge_dense(a.len(), 1, false);
        for ((yi, &ai), &xi) in y.iter_mut().zip(a).zip(x) {
            *yi = ai * xi;
        }
    }

    fn sor_sweep(&mut self, a: &CsrMatrix<T>, diag: &[T], omega: T, b: &[T], x: &mut [T]) {
        // The sweep streams every stored entry once, but each row's update
        // feeds the next row's accumulation — a serial dependence chain
        // the unrolled SpMV engine cannot pipeline across. Charged as one
        // entry per cycle plus a single pipeline fill, on top of the dense
        // relaxation update (divide, subtract, scale, add per row).
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
        let cyc = a.nnz() as u64 + PIPELINE_DEPTH;
        self.cycles.spmv += cyc;
        self.capacity_flops += cyc as f64 * 2.0;
        self.charge_dense(a.nrows(), 4, false);
        self.telemetry.counter_add(Counter::SorSweeps, 1);
        acamar_solvers::sor_sweep_reference(a, diag, omega, b, x);
    }

    fn sptrsv(&mut self, plan: &CompiledSptrsv, m: &CsrMatrix<T>, b: &[T], x: &mut [T]) {
        // Substitution streams the triangle once like an SpMV pass, but
        // every topological level must drain before the next may issue, so
        // each level pays a pipeline refill. Narrow schedules (many
        // levels) therefore cost proportionally more — the level-count
        // sensitivity the bench's scaling section measures.
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += plan.tri_nnz() as u64;
        self.counts.spmv_flops += 2 * plan.tri_nnz() as u64;
        let cyc = plan.tri_nnz() as u64 + plan.level_count() as u64 * PIPELINE_DEPTH;
        self.cycles.spmv += cyc;
        self.capacity_flops += cyc as f64 * 2.0;
        self.telemetry.counter_add(Counter::SptrsvApplies, 1);
        if self.policy.is_fast() {
            let mut scratch: Vec<T> = match &self.workspace {
                Some(ws) => ws.take(plan.max_level_width()),
                None => vec![T::ZERO; plan.max_level_width()],
            };
            plan.execute_fast(m, b, x, 1, &mut scratch)
                .expect("sptrsv shape mismatch");
            if let Some(ws) = &self.workspace {
                ws.give(scratch);
            }
        } else {
            plan.solve_serial(m, b, x).expect("sptrsv shape mismatch");
        }
        // The SpTRSV fault seam: a stuck-at line in the substitution
        // datapath corrupts the freshly produced vector exactly like the
        // SpMV seam corrupts `y` (same per-attempt stuck-raw roll).
        if self.phase == Phase::Loop {
            if let Some(raw) = self.stuck_raw {
                FaultInjector::apply_flip(raw, x);
            }
        }
    }

    fn set_phase(&mut self, phase: Phase) {
        let at = self.cycles.total();
        self.record(TraceEvent::PhaseStart { phase, cycle: at });
        self.telemetry.emit(EventKind::PhaseStart {
            phase: match phase {
                Phase::Initialize => 0,
                Phase::Loop => 1,
            },
        });
        self.phase = phase;
    }

    fn begin_iteration(&mut self, iter: usize) {
        let at = self.cycles.total();
        self.record(TraceEvent::IterationStart {
            iteration: iter,
            cycle: at,
        });
        self.telemetry.emit(EventKind::IterationStart {
            iteration: iter.min(u32::MAX as usize) as u32,
        });
    }

    fn observe_residual(&mut self, iter: usize, relative: f64) {
        self.telemetry.observe_residual(iter, relative);
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_solvers::{bicgstab, conjugate_gradient, jacobi, ConvergenceCriteria};
    use acamar_sparse::generate::{self, RowDistribution};

    fn spec() -> FabricSpec {
        FabricSpec::alveo_u55c()
    }

    #[test]
    fn uniform_schedule_has_no_changes() {
        let s = UnrollSchedule::uniform(100, 8);
        assert_eq!(s.changes_per_pass(), 0);
        assert_eq!(s.max_unroll(), 8);
    }

    #[test]
    fn schedule_counts_changes() {
        let s = UnrollSchedule::from_entries(
            12,
            vec![
                ScheduleEntry {
                    rows: 0..4,
                    unroll: 4,
                },
                ScheduleEntry {
                    rows: 4..8,
                    unroll: 4,
                },
                ScheduleEntry {
                    rows: 8..12,
                    unroll: 8,
                },
            ],
        );
        assert_eq!(s.changes_per_pass(), 1);
        assert_eq!(s.max_unroll(), 8);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn schedule_rejects_gaps() {
        let _ = UnrollSchedule::from_entries(
            8,
            vec![
                ScheduleEntry {
                    rows: 0..3,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 4..8,
                    unroll: 2,
                },
            ],
        );
    }

    #[test]
    fn solver_numerics_match_software_kernels() {
        let a = generate::poisson2d::<f32>(8, 8);
        let b = vec![1.0_f32; 64];
        let crit = ConvergenceCriteria::paper();
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(64, 4), 4);
        let hw_rep = conjugate_gradient(&a, &b, None, &crit, &mut hw).unwrap();
        let mut sw = acamar_solvers::SoftwareKernels::new();
        let sw_rep = conjugate_gradient(&a, &b, None, &crit, &mut sw).unwrap();
        assert_eq!(hw_rep.iterations, sw_rep.iterations);
        assert_eq!(hw_rep.solution, sw_rep.solution);
        assert_eq!(hw_rep.counts.spmv_calls, sw_rep.counts.spmv_calls);
    }

    #[test]
    fn fused_spmv_dot_matches_unfused_bitwise_counts_and_cycles() {
        let a = generate::poisson2d::<f64>(9, 9);
        let x: Vec<f64> = (0..81).map(|i| ((i % 13) as f64) * 0.25 - 1.0).collect();
        let z: Vec<f64> = (0..81).map(|i| ((i % 7) as f64) - 3.0).collect();
        let sched = UnrollSchedule::from_entries(
            81,
            vec![
                ScheduleEntry {
                    rows: 0..40,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 40..81,
                    unroll: 8,
                },
            ],
        );
        let mut fused = FabricKernels::new(spec(), sched.clone(), 4);
        Kernels::<f64>::set_phase(&mut fused, Phase::Loop);
        let mut y_fused = vec![0.0_f64; 81];
        let d_fused = fused.spmv_dot(&a, &x, &mut y_fused, &z);

        let mut unfused = FabricKernels::new(spec(), sched, 4);
        Kernels::<f64>::set_phase(&mut unfused, Phase::Loop);
        let mut y_ref = vec![0.0_f64; 81];
        Kernels::<f64>::spmv(&mut unfused, &a, &x, &mut y_ref);
        let d_ref = unfused.dot(&y_ref, &z);

        assert_eq!(d_fused.to_bits(), d_ref.to_bits());
        assert_eq!(y_fused, y_ref);
        assert_eq!(
            Kernels::<f64>::counts(&fused),
            Kernels::<f64>::counts(&unfused)
        );
        assert_eq!(fused.cycles(), unfused.cycles());
    }

    #[test]
    fn fused_axpy_normsq_matches_unfused_bitwise_counts_and_cycles() {
        let x: Vec<f64> = (0..77).map(|i| ((i % 11) as f64) * 0.5 - 2.0).collect();
        let y0: Vec<f64> = (0..77).map(|i| ((i % 5) as f64) - 1.0).collect();
        let alpha = -0.37_f64;

        let mut fused = FabricKernels::new(spec(), UnrollSchedule::uniform(77, 4), 4);
        let mut y_fused = y0.clone();
        let nsq_fused = fused.axpy_normsq(alpha, &x, &mut y_fused);

        let mut unfused = FabricKernels::new(spec(), UnrollSchedule::uniform(77, 4), 4);
        let mut y_ref = y0;
        unfused.axpy(alpha, &x, &mut y_ref);
        let nsq_ref = unfused.dot(&y_ref, &y_ref);

        assert_eq!(nsq_fused.to_bits(), nsq_ref.to_bits());
        assert_eq!(y_fused, y_ref);
        assert_eq!(
            Kernels::<f64>::counts(&fused),
            Kernels::<f64>::counts(&unfused)
        );
        assert_eq!(fused.cycles(), unfused.cycles());
    }

    #[test]
    fn workspace_buffers_are_recycled_across_fabric_solves() {
        let a = generate::poisson2d::<f32>(8, 8);
        let b = vec![1.0_f32; 64];
        let crit = ConvergenceCriteria::paper();
        let ws = WorkspaceHandle::new();

        let mut k1 = FabricKernels::new(spec(), UnrollSchedule::uniform(64, 4), 4)
            .with_workspace(ws.clone());
        let rep1 = conjugate_gradient(&a, &b, None, &crit, &mut k1).unwrap();
        let (_, fresh_after_cold) = ws.stats();

        let mut k2 = FabricKernels::new(spec(), UnrollSchedule::uniform(64, 4), 4)
            .with_workspace(ws.clone());
        let rep2 = conjugate_gradient(&a, &b, None, &crit, &mut k2).unwrap();
        let (reuses, fresh_after_warm) = ws.stats();

        assert_eq!(rep1.solution, rep2.solution);
        assert!(reuses > 0, "warm solve should recycle pooled buffers");
        // The warm solve allocates at most one fresh buffer (the solution
        // vector escapes the pool, so its replacement is fresh).
        assert!(
            fresh_after_warm - fresh_after_cold <= 1,
            "warm solve allocated {} fresh buffers",
            fresh_after_warm - fresh_after_cold
        );
    }

    #[test]
    fn spmv_dominates_cycles_on_sparse_problems() {
        // Fig. 1: SpMV is the most expensive kernel.
        let a =
            generate::random_pattern::<f32>(512, RowDistribution::Uniform { min: 8, max: 32 }, 11);
        let dd = {
            // make it Jacobi-friendly
            generate::diagonally_dominant::<f32>(
                512,
                RowDistribution::Uniform { min: 8, max: 32 },
                1.5,
                11,
            )
        };
        let _ = a;
        let b = vec![1.0_f32; 512];
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(512, 2), 2);
        let rep = jacobi(&dd, &b, None, &ConvergenceCriteria::paper(), &mut hw).unwrap();
        assert!(rep.converged());
        let stats = hw.finish();
        assert!(
            stats.cycles.spmv_share() > 0.5,
            "spmv share {}",
            stats.cycles.spmv_share()
        );
    }

    #[test]
    fn loop_phase_reconfigures_on_unroll_changes() {
        let a =
            generate::random_pattern::<f32>(64, RowDistribution::Uniform { min: 2, max: 10 }, 5);
        let schedule = UnrollSchedule::from_entries(
            64,
            vec![
                ScheduleEntry {
                    rows: 0..32,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 32..64,
                    unroll: 8,
                },
            ],
        );
        let mut hw = FabricKernels::new(spec(), schedule, 4);
        let x = vec![1.0_f32; 64];
        let mut y = vec![0.0_f32; 64];
        Kernels::<f32>::set_phase(&mut hw, Phase::Loop);
        Kernels::<f32>::spmv(&mut hw, &a, &x, &mut y);
        // first pass: engine pre-loaded with unroll 2, one change to 8
        assert_eq!(hw.reconfig_controller().count(RegionKind::SpmvKernel), 1);
        // second pass: engine holds 8, must go back to 2, then to 8 again
        Kernels::<f32>::spmv(&mut hw, &a, &x, &mut y);
        assert_eq!(hw.reconfig_controller().count(RegionKind::SpmvKernel), 3);
        assert!(hw.cycles().reconfig > 0);
    }

    #[test]
    fn initialize_phase_uses_static_engine_without_reconfig() {
        let a = generate::poisson2d::<f32>(6, 6);
        let schedule = UnrollSchedule::from_entries(
            36,
            vec![
                ScheduleEntry {
                    rows: 0..18,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 18..36,
                    unroll: 16,
                },
            ],
        );
        let mut hw = FabricKernels::new(spec(), schedule, 4);
        let b = vec![1.0_f32; 36];
        let rep = bicgstab(&a, &b, None, &ConvergenceCriteria::paper(), &mut hw).unwrap();
        assert!(rep.converged());
        let stats = hw.finish();
        assert!(stats.used_init_spmv);
        assert!(stats.init_spmv.nnz > 0);
        // the init pass never appears in the loop aggregate
        assert_eq!(
            stats.spmv.nnz + stats.init_spmv.nnz,
            rep.counts.spmv_nnz_processed
        );
    }

    #[test]
    fn achieved_throughput_is_a_fraction() {
        let a = generate::poisson2d::<f32>(8, 8);
        let b = vec![1.0_f32; 64];
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(64, 4), 4);
        let _ = conjugate_gradient(&a, &b, None, &ConvergenceCriteria::paper(), &mut hw).unwrap();
        let stats = hw.finish();
        let t = stats.achieved_throughput();
        assert!(t > 0.0 && t <= 1.0, "throughput {t}");
        assert!(stats.avg_area_mm2 > 0.0);
        assert!(stats.peak_area_mm2 >= stats.avg_area_mm2 * 0.99);
    }

    #[test]
    fn injected_abort_degrades_to_static_max_unroll() {
        use acamar_faultline::{FaultCategory, FaultContext, FaultInjector, FaultPlan};
        use std::sync::Arc;

        let a =
            generate::random_pattern::<f32>(64, RowDistribution::Uniform { min: 2, max: 10 }, 5);
        let schedule = UnrollSchedule::from_entries(
            64,
            vec![
                ScheduleEntry {
                    rows: 0..32,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 32..64,
                    unroll: 8,
                },
            ],
        );
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(9).with_rate(FaultCategory::ReconfigAbort, 1.0),
        ));
        let mut hw = FabricKernels::new(spec(), schedule, 4)
            .with_fault_context(FaultContext::new(Arc::clone(&inj), 0));
        let x = vec![1.0_f32; 64];
        let mut y = vec![0.0_f32; 64];
        Kernels::<f32>::set_phase(&mut hw, Phase::Loop);
        // First pass: the 2→8 swap aborts; recovery pins the region at
        // max unroll (8). Second pass: no further swaps, and the rows
        // planned for unroll 2 run on the oversized engine.
        Kernels::<f32>::spmv(&mut hw, &a, &x, &mut y);
        assert!(hw.is_degraded());
        let after_first = hw.reconfig_controller().count(RegionKind::SpmvKernel);
        Kernels::<f32>::spmv(&mut hw, &a, &x, &mut y);
        assert_eq!(
            hw.reconfig_controller().count(RegionKind::SpmvKernel),
            after_first,
            "degraded region must never reconfigure again"
        );
        let stats = hw.finish();
        assert!(stats.degraded_to_static);
        assert_eq!(stats.reconfig_aborts, 1);
        assert!(
            stats.lost_area_cycles > 0,
            "oversized-engine cycles uncounted"
        );
        assert_eq!(inj.injected()[FaultCategory::ReconfigAbort.index()], 1);
    }

    #[test]
    fn injected_stuck_bit_corrupts_loop_spmv_only() {
        use acamar_faultline::{FaultCategory, FaultContext, FaultInjector, FaultPlan};
        use std::sync::Arc;

        let a = generate::poisson2d::<f64>(6, 6);
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(3).with_rate(FaultCategory::SpmvBitFlip, 1.0),
        ));
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(36, 4), 4)
            .with_fault_context(FaultContext::new(Arc::clone(&inj), 7));
        let x = vec![1.0_f64; 36];
        let mut y = vec![0.0_f64; 36];
        // Initialize phase runs the static engine: never corrupted, even
        // after the attempt's stuck bit has been rolled.
        hw.set_schedule(UnrollSchedule::uniform(36, 4));
        Kernels::<f64>::spmv(&mut hw, &a, &x, &mut y);
        assert!(y.iter().all(|v| v.is_finite() && v.abs() < 1e3));
        Kernels::<f64>::set_phase(&mut hw, Phase::Loop);
        Kernels::<f64>::spmv(&mut hw, &a, &x, &mut y);
        let loud = y
            .iter()
            .filter(|v| !v.is_finite() || v.abs() > 1e100)
            .count();
        assert_eq!(loud, 1, "exactly one stuck output element per attempt");
        assert_eq!(inj.injected()[FaultCategory::SpmvBitFlip.index()], 1);
    }

    #[test]
    fn injected_stuck_bit_corrupts_loop_sptrsv_only() {
        use acamar_faultline::{FaultCategory, FaultContext, FaultInjector, FaultPlan};
        use acamar_sparse::CompiledSptrsv;
        use std::sync::Arc;

        let a = generate::poisson2d::<f64>(6, 6);
        let plan = CompiledSptrsv::compile_lower(&a).unwrap();
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(3).with_rate(FaultCategory::SpmvBitFlip, 1.0),
        ));
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(36, 4), 4)
            .with_fault_context(FaultContext::new(Arc::clone(&inj), 7));
        let b = vec![1.0_f64; 36];
        let mut x = vec![0.0_f64; 36];
        // Roll the attempt's stuck bit; the Initialize-phase substitution
        // (preconditioner setup) must stay clean regardless.
        hw.set_schedule(UnrollSchedule::uniform(36, 4));
        Kernels::<f64>::sptrsv(&mut hw, &plan, &a, &b, &mut x);
        assert!(x.iter().all(|v| v.is_finite() && v.abs() < 1e3));
        // Loop phase: the substitution datapath seam corrupts exactly one
        // element of the freshly produced vector, like the SpMV seam.
        Kernels::<f64>::set_phase(&mut hw, Phase::Loop);
        Kernels::<f64>::sptrsv(&mut hw, &plan, &a, &b, &mut x);
        let loud = x
            .iter()
            .filter(|v| !v.is_finite() || v.abs() > 1e100)
            .count();
        assert_eq!(loud, 1, "exactly one stuck output element per attempt");
        assert_eq!(inj.injected()[FaultCategory::SpmvBitFlip.index()], 1);
    }

    #[test]
    fn compiled_plan_leaves_numerics_counts_cycles_and_faults_unchanged() {
        use acamar_faultline::{FaultCategory, FaultContext, FaultInjector, FaultPlan};

        let a =
            generate::random_pattern::<f64>(96, RowDistribution::Uniform { min: 1, max: 12 }, 21);
        let schedule = UnrollSchedule::from_entries(
            96,
            vec![
                ScheduleEntry {
                    rows: 0..48,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 48..96,
                    unroll: 8,
                },
            ],
        );
        let plan = Arc::new(CompiledSpmv::compile(&a, &schedule.band_hints()).unwrap());
        let x: Vec<f64> = (0..96).map(|i| ((i % 9) as f64) * 0.5 - 2.0).collect();

        // Fault-free: compiled host arithmetic is bitwise identical and
        // the cycle model doesn't notice the host kernel swap.
        let mut plain = FabricKernels::new(spec(), schedule.clone(), 4);
        Kernels::<f64>::set_phase(&mut plain, Phase::Loop);
        let mut y_ref = vec![0.0_f64; 96];
        Kernels::<f64>::spmv(&mut plain, &a, &x, &mut y_ref);

        let mut comp =
            FabricKernels::new(spec(), schedule.clone(), 4).with_compiled_plan(Arc::clone(&plan));
        Kernels::<f64>::set_phase(&mut comp, Phase::Loop);
        let mut y = vec![0.0_f64; 96];
        Kernels::<f64>::spmv(&mut comp, &a, &x, &mut y);

        assert_eq!(y, y_ref);
        assert_eq!(
            Kernels::<f64>::counts(&comp),
            Kernels::<f64>::counts(&plain)
        );
        assert_eq!(comp.cycles(), plain.cycles());

        // Under an injected stuck bit the corrupted outputs are byte-equal
        // too: the flip applies to `y` after the SpMV either way.
        let run_faulty = |with_plan: bool| {
            let inj = Arc::new(FaultInjector::new(
                FaultPlan::new(5).with_rate(FaultCategory::SpmvBitFlip, 1.0),
            ));
            let mut hw = FabricKernels::new(spec(), schedule.clone(), 4)
                .with_fault_context(FaultContext::new(inj, 3));
            if with_plan {
                hw = hw.with_compiled_plan(Arc::clone(&plan));
            }
            hw.set_schedule(schedule.clone());
            Kernels::<f64>::set_phase(&mut hw, Phase::Loop);
            let mut y = vec![0.0_f64; 96];
            let d = hw.spmv_dot(&a, &x, &mut y, &x);
            (y, d)
        };
        let (fy_ref, fd_ref) = run_faulty(false);
        let (fy, fd) = run_faulty(true);
        // Byte-compare: the injected flip may have produced a NaN.
        for (got, want) in fy.iter().zip(&fy_ref) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(fd.to_bits(), fd_ref.to_bits());
    }

    #[test]
    fn fast_policy_keeps_counts_cycles_and_fault_flip_ordering() {
        use acamar_faultline::{FaultCategory, FaultContext, FaultInjector, FaultPlan};
        use acamar_sparse::DeterminismPolicy;

        let a =
            generate::random_pattern::<f64>(96, RowDistribution::Uniform { min: 1, max: 12 }, 21);
        let schedule = UnrollSchedule::from_entries(
            96,
            vec![
                ScheduleEntry {
                    rows: 0..48,
                    unroll: 2,
                },
                ScheduleEntry {
                    rows: 48..96,
                    unroll: 8,
                },
            ],
        );
        let plan = Arc::new(CompiledSpmv::compile(&a, &schedule.band_hints()).unwrap());
        let x: Vec<f64> = (0..96).map(|i| ((i % 9) as f64) * 0.5 - 2.0).collect();

        // Charges are tier-independent: the fabric model bills the same
        // work whichever host summation order computes it.
        let run = |policy: DeterminismPolicy| {
            let mut hw = FabricKernels::new(spec(), schedule.clone(), 4)
                .with_compiled_plan(Arc::clone(&plan))
                .with_policy(policy);
            Kernels::<f64>::set_phase(&mut hw, Phase::Loop);
            let mut y = vec![0.0_f64; 96];
            let d = hw.spmv_dot(&a, &x, &mut y, &x);
            let n = hw.axpy_normsq(0.25, &x, &mut y);
            (Kernels::<f64>::counts(&hw), hw.cycles(), y, d, n)
        };
        let (counts_det, cycles_det, y_det, d_det, n_det) = run(DeterminismPolicy::Deterministic);
        let (counts_fast, cycles_fast, y_fast, d_fast, n_fast) = run(DeterminismPolicy::Fast);
        assert_eq!(counts_det, counts_fast);
        assert_eq!(cycles_det, cycles_fast);
        assert!((d_det - d_fast).abs() <= 1e-10 * d_det.abs().max(1.0));
        assert!((n_det - n_fast).abs() <= 1e-10 * n_det.abs().max(1.0));
        // Fast SpMV reassociates row sums, so y agrees to rounding only.
        for (f, d) in y_fast.iter().zip(&y_det) {
            assert!((f - d).abs() <= 1e-12 * d.abs().max(1.0), "{f} vs {d}");
        }

        // The stuck-bit flip still lands on `y` before the fused dot reads
        // it, so both tiers see the corrupted element in the reduction.
        let run_faulty = |policy: DeterminismPolicy| {
            let inj = Arc::new(FaultInjector::new(
                FaultPlan::new(5).with_rate(FaultCategory::SpmvBitFlip, 1.0),
            ));
            let mut hw = FabricKernels::new(spec(), schedule.clone(), 4)
                .with_compiled_plan(Arc::clone(&plan))
                .with_fault_context(FaultContext::new(inj, 3))
                .with_policy(policy);
            hw.set_schedule(schedule.clone());
            Kernels::<f64>::set_phase(&mut hw, Phase::Loop);
            let mut y = vec![0.0_f64; 96];
            let d = hw.spmv_dot(&a, &x, &mut y, &x);
            (y, d)
        };
        let (fy_det, fd_det) = run_faulty(DeterminismPolicy::Deterministic);
        let (fy_fast, fd_fast) = run_faulty(DeterminismPolicy::Fast);
        let loud = |y: &[f64]| {
            y.iter()
                .enumerate()
                .filter(|(_, v)| !v.is_finite() || v.abs() > 1e50)
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        // Same single element corrupted on both tiers...
        assert_eq!(loud(&fy_det), loud(&fy_fast));
        assert_eq!(loud(&fy_det).len(), 1);
        // ...and both fused dots absorbed it.
        assert!(fd_det.abs() > 1e50 || !fd_det.is_finite());
        assert!(fd_fast.abs() > 1e50 || !fd_fast.is_finite());
    }

    #[test]
    fn solver_region_reconfig_is_charged() {
        let mut hw = FabricKernels::new(spec(), UnrollSchedule::uniform(8, 2), 2);
        let before = hw.cycles().reconfig;
        hw.charge_solver_reconfig(&crate::cost::solver_control_unit());
        assert!(hw.cycles().reconfig > before);
        assert_eq!(hw.reconfig_controller().count(RegionKind::Solver), 1);
    }
}
