//! The static-design baseline accelerator (paper Section V-E).
//!
//! "We compare [Acamar] to a static design that incorporates the same
//! optimized static units as Acamar, as well as a static configuration of
//! the SpMV unit": one fixed solver, one fixed unroll factor
//! (`SpMV_URB`), no reconfiguration.

use crate::kernels::{FabricKernels, FabricRunStats, UnrollSchedule};
use crate::spec::FabricSpec;
use acamar_solvers::{solve_with, ConvergenceCriteria, SolveReport, SolverKind};
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Combined numerical + hardware result of a solve on the fabric model.
#[derive(Debug, Clone)]
pub struct HwRun<T> {
    /// Numerical outcome (iterations, residuals, solution).
    pub solve: SolveReport<T>,
    /// Hardware statistics (cycles, utilization, area).
    pub stats: FabricRunStats,
    /// Clock used to convert cycles to time.
    pub clock_mhz: f64,
}

impl<T> HwRun<T> {
    /// Wall-clock seconds of the run, including reconfiguration.
    pub fn total_seconds(&self) -> f64 {
        self.stats.cycles.total() as f64 / (self.clock_mhz * 1e6)
    }

    /// Wall-clock seconds of compute only (the paper's latency metric;
    /// reconfiguration budgets are treated separately — Fig. 13).
    pub fn compute_seconds(&self) -> f64 {
        self.stats.cycles.compute() as f64 / (self.clock_mhz * 1e6)
    }

    /// Sustained GFLOP/s over compute time.
    pub fn gflops(&self) -> f64 {
        let s = self.compute_seconds();
        if s == 0.0 {
            0.0
        } else {
            self.stats.useful_flops as f64 / s / 1e9
        }
    }

    /// Performance efficiency in GFLOPS/mm² (paper Fig. 10), using the
    /// time-weighted instantiated area.
    pub fn gflops_per_mm2(&self) -> f64 {
        if self.stats.avg_area_mm2 == 0.0 {
            0.0
        } else {
            self.gflops() / self.stats.avg_area_mm2
        }
    }
}

/// A fixed-solver, fixed-`SpMV_URB` accelerator.
///
/// # Examples
///
/// ```
/// use acamar_fabric::{FabricSpec, StaticAccelerator};
/// use acamar_solvers::{ConvergenceCriteria, SolverKind};
/// use acamar_sparse::generate;
///
/// let a = generate::poisson2d::<f32>(8, 8);
/// let accel = StaticAccelerator::new(
///     FabricSpec::alveo_u55c(), SolverKind::ConjugateGradient, 16);
/// let run = accel.run(&a, &vec![1.0; 64], &ConvergenceCriteria::paper())?;
/// assert!(run.solve.converged());
/// assert!(run.stats.spmv.underutilization() > 0.5); // URB 16 >> NNZ/row 5
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StaticAccelerator {
    spec: FabricSpec,
    solver: SolverKind,
    spmv_urb: usize,
}

impl StaticAccelerator {
    /// Creates a static design running `solver` with `spmv_urb` MAC lanes.
    ///
    /// # Panics
    ///
    /// Panics if `spmv_urb == 0`.
    pub fn new(spec: FabricSpec, solver: SolverKind, spmv_urb: usize) -> Self {
        assert!(spmv_urb > 0, "SpMV_URB must be positive");
        StaticAccelerator {
            spec,
            solver,
            spmv_urb,
        }
    }

    /// The configured solver.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// The configured unroll factor.
    pub fn spmv_urb(&self) -> usize {
        self.spmv_urb
    }

    /// Runs the solve on the fabric model.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for shape problems. Numerical divergence is
    /// reported in `HwRun::solve.outcome` — for a static design there is
    /// no Solver Modifier, so divergence is terminal (the paper notes this
    /// "results in unbounded execution time" for the baseline).
    pub fn run<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        criteria: &ConvergenceCriteria,
    ) -> Result<HwRun<T>, SparseError> {
        let schedule = UnrollSchedule::uniform(a.nrows(), self.spmv_urb);
        // The static design's initialize SpMV shares the same fixed
        // engine configuration.
        let mut hw = FabricKernels::new(self.spec.clone(), schedule, self.spmv_urb);
        let solve = solve_with(self.solver, a, b, None, criteria, &mut hw)?;
        let stats = hw.finish();
        Ok(HwRun {
            solve,
            stats,
            clock_mhz: self.spec.clock_mhz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(2000)
    }

    #[test]
    fn static_design_never_reconfigures() {
        let a = generate::poisson2d::<f32>(10, 10);
        let accel =
            StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::ConjugateGradient, 8);
        let run = accel.run(&a, &vec![1.0; 100], &criteria()).unwrap();
        assert!(run.solve.converged());
        assert_eq!(run.stats.spmv_reconfig_events, 0);
        assert_eq!(run.stats.cycles.reconfig, 0);
    }

    #[test]
    fn urb1_is_fully_utilized_but_slow() {
        let a = generate::diagonally_dominant::<f32>(
            256,
            RowDistribution::Uniform { min: 4, max: 24 },
            1.5,
            13,
        );
        let b = vec![1.0_f32; 256];
        let spec = FabricSpec::alveo_u55c();
        let fast = StaticAccelerator::new(spec.clone(), SolverKind::Jacobi, 16)
            .run(&a, &b, &criteria())
            .unwrap();
        let slow = StaticAccelerator::new(spec, SolverKind::Jacobi, 1)
            .run(&a, &b, &criteria())
            .unwrap();
        assert!(slow.solve.converged() && fast.solve.converged());
        assert_eq!(slow.stats.spmv.underutilization(), 0.0);
        assert!(fast.stats.spmv.underutilization() > 0.0);
        assert!(
            slow.stats.cycles.spmv > fast.stats.cycles.spmv,
            "URB=1 must be slower: {} vs {}",
            slow.stats.cycles.spmv,
            fast.stats.cycles.spmv
        );
    }

    #[test]
    fn metrics_are_positive_and_consistent() {
        let a = generate::poisson2d::<f32>(8, 8);
        let accel = StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::BiCgStab, 4);
        let run = accel.run(&a, &vec![1.0; 64], &criteria()).unwrap();
        assert!(run.total_seconds() >= run.compute_seconds());
        assert!(run.gflops() > 0.0);
        assert!(run.gflops_per_mm2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "SpMV_URB must be positive")]
    fn zero_urb_rejected() {
        let _ = StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::Jacobi, 0);
    }
}
