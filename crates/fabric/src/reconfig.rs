//! Dynamic partial reconfiguration (Xilinx DFX) model.
//!
//! The paper uses Nested DFX on the Alveo U55C: the Reconfigurable Solver
//! unit is one reconfigurable region, and the Dynamic SpMV Kernel is a
//! nested region within it (Section VIII-A). Bitstreams stream through
//! ICAP at 6.4 Gb/s, so reconfiguration time is
//! `bitstream bits / 6.4 Gb/s` — exactly what this controller charges.

use crate::cost::bitstream_bits;
use crate::spec::{FabricSpec, ResourceVector};

/// Which reconfigurable region an event targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// The outer region holding a whole solver (JB/CG/BiCG-STAB swap).
    Solver,
    /// The nested region holding the Dynamic SpMV Kernel (unroll swap).
    SpmvKernel,
}

/// One partial-reconfiguration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// Region reconfigured.
    pub region: RegionKind,
    /// Partial-bitstream size in bits.
    pub bits: u64,
    /// Kernel-clock cycles spent streaming the bitstream.
    pub cycles: u64,
}

/// Tracks reconfiguration events and their cumulative cost.
#[derive(Debug, Clone)]
pub struct ReconfigController {
    spec: FabricSpec,
    events: Vec<ReconfigEvent>,
    total_cycles: u64,
    aborts: usize,
    aborted_cycles: u64,
}

impl ReconfigController {
    /// Creates a controller for `spec`.
    pub fn new(spec: FabricSpec) -> Self {
        ReconfigController {
            spec,
            events: Vec::new(),
            total_cycles: 0,
            aborts: 0,
            aborted_cycles: 0,
        }
    }

    /// Records a reconfiguration of `region` to a module occupying `rv`,
    /// returning the cycles charged.
    pub fn reconfigure(&mut self, region: RegionKind, rv: &ResourceVector) -> u64 {
        let bits = bitstream_bits(rv);
        let cycles = self.spec.icap_cycles(bits);
        self.events.push(ReconfigEvent {
            region,
            bits,
            cycles,
        });
        self.total_cycles += cycles;
        cycles
    }

    /// Records an *aborted* reconfiguration of `region`: the partial
    /// bitstream for a module occupying `rv` streamed through ICAP but
    /// the swap failed, leaving the previously loaded module active. The
    /// wasted streaming time is still wall-clock stall, so it is charged
    /// like a successful event; the caller must not update its notion of
    /// the loaded configuration. Returns the cycles charged.
    pub fn record_abort(&mut self, region: RegionKind, rv: &ResourceVector) -> u64 {
        let cycles = self.reconfigure(region, rv);
        self.aborts += 1;
        self.aborted_cycles += cycles;
        cycles
    }

    /// Number of aborted reconfiguration attempts.
    pub fn abort_count(&self) -> usize {
        self.aborts
    }

    /// ICAP cycles wasted streaming bitstreams whose swap aborted.
    pub fn aborted_cycles(&self) -> u64 {
        self.aborted_cycles
    }

    /// All events in order (aborted attempts included — they stream the
    /// same bits and stall the same cycles).
    pub fn events(&self) -> &[ReconfigEvent] {
        &self.events
    }

    /// Number of events targeting `region`.
    pub fn count(&self, region: RegionKind) -> usize {
        self.events.iter().filter(|e| e.region == region).count()
    }

    /// Total cycles spent reconfiguring.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total seconds spent reconfiguring.
    pub fn total_seconds(&self) -> f64 {
        self.spec.cycles_to_seconds(self.total_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::spmv_engine;

    #[test]
    fn reconfigure_charges_icap_time() {
        let mut c = ReconfigController::new(FabricSpec::alveo_u55c());
        let cycles = c.reconfigure(RegionKind::SpmvKernel, &spmv_engine(8));
        assert!(cycles > 0);
        assert_eq!(c.total_cycles(), cycles);
        assert_eq!(c.events().len(), 1);
        assert_eq!(c.count(RegionKind::SpmvKernel), 1);
        assert_eq!(c.count(RegionKind::Solver), 0);
    }

    #[test]
    fn aborted_swaps_still_cost_icap_time() {
        let mut c = ReconfigController::new(FabricSpec::alveo_u55c());
        let ok = c.reconfigure(RegionKind::SpmvKernel, &spmv_engine(4));
        let wasted = c.record_abort(RegionKind::SpmvKernel, &spmv_engine(4));
        assert_eq!(ok, wasted, "the failed stream moves the same bits");
        assert_eq!(c.abort_count(), 1);
        assert_eq!(c.aborted_cycles(), wasted);
        assert_eq!(c.total_cycles(), ok + wasted);
        assert_eq!(c.events().len(), 2);
    }

    #[test]
    fn bigger_regions_cost_more() {
        let mut c = ReconfigController::new(FabricSpec::alveo_u55c());
        let small = c.reconfigure(RegionKind::SpmvKernel, &spmv_engine(2));
        let large = c.reconfigure(RegionKind::Solver, &spmv_engine(64));
        assert!(large > small);
        assert_eq!(c.total_cycles(), small + large);
        assert!(c.total_seconds() > 0.0);
    }
}
