//! # acamar-fabric
//!
//! Behavioral FPGA fabric model for the Acamar (MICRO 2024) reproduction:
//! an Alveo U55C-class device specification, resource and area accounting,
//! cycle models for the SpMV engine and dense vector units, a DFX partial
//! reconfiguration controller, and a [`Kernels`](acamar_solvers::Kernels)
//! executor ([`FabricKernels`]) that runs the real solver numerics while
//! charging hardware costs.
//!
//! The paper evaluates "based on its Vitis HLS implementation on Xilinx
//! Alveo u55c … \[with\] a cycle-level simulator that takes the performance
//! numbers from the HLS co-simulation" (Section V-A); this crate *is* that
//! simulator layer, with unit costs as documented calibrated estimates
//! (see `cost`).
//!
//! ```
//! use acamar_fabric::{FabricSpec, StaticAccelerator};
//! use acamar_solvers::{ConvergenceCriteria, SolverKind};
//! use acamar_sparse::generate;
//!
//! // The paper's static baseline: fixed solver, fixed SpMV_URB.
//! let a = generate::poisson2d::<f32>(16, 16);
//! let baseline = StaticAccelerator::new(
//!     FabricSpec::alveo_u55c(), SolverKind::ConjugateGradient, 16);
//! let run = baseline.run(&a, &vec![1.0; 256], &ConvergenceCriteria::paper())?;
//! assert!(run.solve.converged());
//! // A 5-point stencil keeps at most 5 of 16 lanes busy:
//! assert!(run.stats.spmv.underutilization() > 0.6);
//! # Ok::<(), acamar_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accelerator;
pub mod cost;
mod kernels;
mod reconfig;
mod spec;
pub mod spmv;
pub mod trace;

pub use accelerator::{HwRun, StaticAccelerator};
pub use kernels::{CycleBreakdown, FabricKernels, FabricRunStats, ScheduleEntry, UnrollSchedule};
pub use reconfig::{ReconfigController, ReconfigEvent, RegionKind};
pub use spec::{FabricSpec, ResourceVector};
pub use spmv::SpmvExecution;
pub use trace::{ExecutionTrace, TraceEvent};
