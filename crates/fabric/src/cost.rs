//! Hardware cost models for the compute units.
//!
//! Costs are representative of Vitis HLS fp32 implementations on
//! UltraScale+ (the paper's flow). Absolute values are calibrated
//! estimates — every reproduced figure depends only on *relative* costs
//! and on the Eq. 5 utilization arithmetic, which is exact.

use crate::spec::ResourceVector;

/// Lanes in the (static) dense vector units — the "most optimized HLS
/// design" of the paper's dense kernels (Section IV-B).
pub const DENSE_VECTOR_WIDTH: usize = 8;

/// Pipeline fill/flush cycles charged once per kernel invocation.
pub const PIPELINE_DEPTH: u64 = 24;

/// Extra cycles charged per sparse row (row-pointer fetch, output
/// write-back; mostly overlapped by the streaming pipeline).
pub const ROW_OVERHEAD_CYCLES: u64 = 1;

/// Reduction-tree latency for dot products (log2 of lanes, rounded up,
/// times the adder latency).
pub const REDUCTION_LATENCY: u64 = 12;

/// Resource cost of one fp32 multiply-accumulate pipeline
/// (Vitis HLS fp32 mul ≈ 3 DSP + fp32 add ≈ 2 DSP on UltraScale+).
pub fn mac_unit() -> ResourceVector {
    ResourceVector {
        lut: 750,
        ff: 1100,
        dsp: 5,
        bram: 0,
    }
}

/// Resource cost of a CSR SpMV engine with `unroll` parallel MAC lanes:
/// the MAC array plus stream decoders, the gather network for `x`, and
/// the partial-sum reduction.
///
/// # Panics
///
/// Panics if `unroll == 0`.
pub fn spmv_engine(unroll: usize) -> ResourceVector {
    assert!(unroll > 0, "unroll factor must be positive");
    let u = unroll as u64;
    mac_unit() * u
        + ResourceVector {
            lut: 2_000 + 220 * u,
            ff: 3_000 + 260 * u,
            dsp: 0,
            bram: 8 + u.div_ceil(4),
        }
}

/// Resource cost of the static dense vector unit (dot/axpy/scale), with
/// [`DENSE_VECTOR_WIDTH`] MAC lanes plus a reduction tree.
pub fn dense_vector_unit() -> ResourceVector {
    let w = DENSE_VECTOR_WIDTH as u64;
    mac_unit() * w
        + ResourceVector {
            lut: 3_500,
            ff: 5_000,
            dsp: 0,
            bram: 4,
        }
}

/// Resource cost of the statically programmed per-solver control and
/// bookkeeping units (Initialize, residual monitor, Solver Modifier
/// plumbing).
pub fn solver_control_unit() -> ResourceVector {
    ResourceVector {
        lut: 9_000,
        ff: 14_000,
        dsp: 8,
        bram: 16,
    }
}

/// Partial-bitstream size in bits for a reconfigurable region holding
/// `rv`.
///
/// UltraScale+ configuration frames cover whole columns, so DFX regions
/// carry overhead beyond the raw logic; the per-resource coefficients
/// below fold that in (they are calibrated so a ~16-lane SpMV region is a
/// few hundred kilobytes, matching small-module DFX practice).
pub fn bitstream_bits(rv: &ResourceVector) -> u64 {
    let raw = 256 * rv.lut + 16 * rv.ff + 4_096 * rv.dsp + 40_960 * rv.bram;
    // frame-alignment overhead
    raw + raw / 4 + 65_536
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_engine_scales_with_unroll() {
        let u1 = spmv_engine(1);
        let u16 = spmv_engine(16);
        assert!(u16.dsp == 16 * mac_unit().dsp);
        assert!(u16.lut > u1.lut);
        assert!(u16.bram > u1.bram);
    }

    #[test]
    #[should_panic(expected = "unroll factor must be positive")]
    fn zero_unroll_rejected() {
        let _ = spmv_engine(0);
    }

    #[test]
    fn dense_unit_has_fixed_width() {
        let d = dense_vector_unit();
        assert_eq!(d.dsp, DENSE_VECTOR_WIDTH as u64 * mac_unit().dsp);
    }

    #[test]
    fn bitstream_grows_with_region() {
        let small = bitstream_bits(&spmv_engine(2));
        let large = bitstream_bits(&spmv_engine(64));
        assert!(large > small);
        // a 16-lane region is a few hundred KB => order 1e6..1e7 bits
        let mid = bitstream_bits(&spmv_engine(16));
        assert!(mid > 1_000_000 && mid < 20_000_000, "mid = {mid}");
    }

    #[test]
    fn reconfig_time_for_16_lane_region_is_sub_millisecond() {
        let spec = crate::spec::FabricSpec::alveo_u55c();
        let bits = bitstream_bits(&spmv_engine(16));
        let secs = bits as f64 / (spec.icap_gbps * 1e9);
        assert!(secs < 2e-3, "reconfig takes {secs}s");
        assert!(secs > 1e-5);
    }
}
