//! SpMV execution model: cycles and MAC-slot utilization per paper Eq. 5.
//!
//! The engine processes one CSR row at a time; each cycle it issues
//! `unroll` multiply-accumulate slots, so a row with `nnz` stored entries
//! takes `ceil(nnz / unroll)` issue cycles and wastes
//! `ceil(nnz/unroll)·unroll - nnz` slots. The *resource underutilization*
//! of a run is wasted slots over issued slots — the interpretation of the
//! paper's Eq. 5 that reproduces both of its worked examples (Eq. 10 and
//! Eq. 11); see DESIGN.md §5.

use crate::cost::{PIPELINE_DEPTH, ROW_OVERHEAD_CYCLES};
use crate::spec::FabricSpec;
use acamar_sparse::{CsrMatrix, Scalar};
use std::ops::Range;

/// Aggregate result of streaming a row range through an SpMV engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmvExecution {
    /// Total engine cycles, including per-row overhead, pipeline fill, and
    /// any memory-bandwidth stall.
    pub cycles: u64,
    /// MAC slots issued (`Σ_rows ceil(nnz/U)·U`).
    pub slots_issued: u64,
    /// MAC slots that carried useful work (`Σ_rows nnz`).
    pub slots_used: u64,
    /// Rows processed.
    pub rows: u64,
    /// Stored entries processed.
    pub nnz: u64,
}

impl SpmvExecution {
    /// Resource underutilization in `[0, 1]`: wasted slots over issued
    /// slots (paper Eq. 5; 0 is perfect).
    pub fn underutilization(&self) -> f64 {
        if self.slots_issued == 0 {
            0.0
        } else {
            (self.slots_issued - self.slots_used) as f64 / self.slots_issued as f64
        }
    }

    /// Resource utilization in `[0, 1]` (`1 - underutilization`).
    pub fn utilization(&self) -> f64 {
        1.0 - self.underutilization()
    }

    /// Merges two executions (e.g. consecutive row sets).
    pub fn merge(&self, other: &SpmvExecution) -> SpmvExecution {
        SpmvExecution {
            cycles: self.cycles + other.cycles,
            slots_issued: self.slots_issued + other.slots_issued,
            slots_used: self.slots_used + other.slots_used,
            rows: self.rows + other.rows,
            nnz: self.nnz + other.nnz,
        }
    }
}

/// Models streaming rows `range` of `a` through an engine with `unroll`
/// MAC lanes, without the pipeline-fill charge (callers add
/// [`PIPELINE_DEPTH`] once per kernel invocation).
///
/// Cycle model per row: `ceil(nnz/U)` issue cycles (one chunk of `U` slots
/// per cycle, initiation interval 1) plus [`ROW_OVERHEAD_CYCLES`]; empty
/// rows still pay the row overhead. A memory-bandwidth floor of
/// `8 bytes x nnz / bytes_per_cycle` (value + column index per entry) is
/// applied across the range.
///
/// # Panics
///
/// Panics if `unroll == 0` or the range exceeds the matrix rows.
pub fn execute_rows<T: Scalar>(
    a: &CsrMatrix<T>,
    range: Range<usize>,
    unroll: usize,
    spec: &FabricSpec,
) -> SpmvExecution {
    assert!(unroll > 0, "unroll factor must be positive");
    assert!(range.end <= a.nrows(), "row range out of bounds");
    let u = unroll as u64;
    let mut exec = SpmvExecution::default();
    for i in range {
        let nnz = a.row_nnz(i) as u64;
        let chunks = nnz.div_ceil(u);
        exec.cycles += chunks + ROW_OVERHEAD_CYCLES;
        exec.slots_issued += chunks * u;
        exec.slots_used += nnz;
        exec.nnz += nnz;
        exec.rows += 1;
    }
    // Memory floor: each stored entry streams 8 bytes (4 B value + 4 B
    // column index) from HBM.
    let mem_cycles = (8.0 * exec.nnz as f64 / spec.bytes_per_cycle()).ceil() as u64;
    exec.cycles = exec.cycles.max(mem_cycles);
    exec
}

/// Models a full-matrix SpMV as one kernel invocation with a single unroll
/// factor (the static baseline's engine), including pipeline fill.
pub fn execute_matrix<T: Scalar>(
    a: &CsrMatrix<T>,
    unroll: usize,
    spec: &FabricSpec,
) -> SpmvExecution {
    let mut e = execute_rows(a, 0..a.nrows(), unroll, spec);
    e.cycles += PIPELINE_DEPTH;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};
    use acamar_sparse::CooMatrix;

    fn spec() -> FabricSpec {
        FabricSpec::alveo_u55c()
    }

    fn row_counts(counts: &[usize]) -> CsrMatrix<f32> {
        let n = counts.len();
        let m = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut coo = CooMatrix::new(n, m);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn eq10_worked_example() {
        // 8 non-zeros, unroll 10 => 20% underutilization (paper Eq. 10).
        let a = row_counts(&[8]);
        let e = execute_rows(&a, 0..1, 10, &spec());
        assert!((e.underutilization() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn eq11_worked_example() {
        // 6 non-zeros, unroll 3 => 0% underutilization (paper Eq. 11).
        let a = row_counts(&[6]);
        let e = execute_rows(&a, 0..1, 3, &spec());
        assert_eq!(e.underutilization(), 0.0);
        // and unroll 7 => (7-6)/7 ≈ 14% (the paper's "initial" case)
        let e7 = execute_rows(&a, 0..1, 7, &spec());
        assert!((e7.underutilization() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn unroll_1_has_zero_underutilization_and_max_cycles() {
        let a = generate::random_pattern::<f32>(64, RowDistribution::Uniform { min: 1, max: 9 }, 3);
        let e1 = execute_rows(&a, 0..64, 1, &spec());
        assert_eq!(e1.underutilization(), 0.0);
        let e8 = execute_rows(&a, 0..64, 8, &spec());
        assert!(e8.cycles < e1.cycles, "more lanes must not be slower");
        assert!(e8.underutilization() > 0.0);
    }

    #[test]
    fn cycles_follow_chunk_model() {
        let a = row_counts(&[5, 0, 12]);
        let e = execute_rows(&a, 0..3, 4, &spec());
        // chunks: ceil(5/4)=2, 0, ceil(12/4)=3 => 5 issue cycles + 3 rows * 2
        assert_eq!(e.cycles, 5 + 3 * ROW_OVERHEAD_CYCLES);
        assert_eq!(e.slots_issued, (2 + 3) * 4); // empty row issues nothing
        assert_eq!(e.slots_used, 17);
    }

    #[test]
    fn merge_accumulates() {
        let a = row_counts(&[4, 4, 4, 4]);
        let e1 = execute_rows(&a, 0..2, 4, &spec());
        let e2 = execute_rows(&a, 2..4, 4, &spec());
        let m = e1.merge(&e2);
        let full = execute_rows(&a, 0..4, 4, &spec());
        assert_eq!(m.slots_issued, full.slots_issued);
        assert_eq!(m.nnz, full.nnz);
        assert_eq!(m.rows, 4);
    }

    #[test]
    fn memory_floor_binds_for_huge_unroll() {
        // 256 lanes want 2 kB/cycle of matrix data; HBM supplies ~1.5 kB.
        let a = row_counts(&[100_000]);
        let e = execute_rows(&a, 0..1, 256, &spec());
        let mem = (8.0 * 100_000.0 / spec().bytes_per_cycle()).ceil() as u64;
        assert_eq!(e.cycles, mem);
    }

    #[test]
    fn execute_matrix_adds_pipeline_fill() {
        let a = row_counts(&[4, 4]);
        let rows = execute_rows(&a, 0..2, 4, &spec());
        let full = execute_matrix(&a, 4, &spec());
        assert_eq!(full.cycles, rows.cycles + PIPELINE_DEPTH);
    }

    #[test]
    fn empty_execution_is_fully_utilized() {
        let e = SpmvExecution::default();
        assert_eq!(e.underutilization(), 0.0);
        assert_eq!(e.utilization(), 1.0);
    }
}
