//! Cycle-stamped execution traces.
//!
//! When enabled on [`FabricKernels`](crate::FabricKernels), every phase
//! change, loop iteration, SpMV segment, and reconfiguration event is
//! recorded with its start cycle — the behavioral-simulator view of a run
//! (useful for timelines, debugging schedules, and teaching material).

use crate::reconfig::RegionKind;
use acamar_solvers::Phase;
use std::ops::Range;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The solver entered a phase (initialize / loop).
    PhaseStart {
        /// Phase entered.
        phase: Phase,
        /// Total cycle count when it began.
        cycle: u64,
    },
    /// A loop iteration began.
    IterationStart {
        /// Iteration index (0-based).
        iteration: usize,
        /// Total cycle count when it began.
        cycle: u64,
    },
    /// The SpMV engine streamed a row segment.
    SpmvSegment {
        /// Rows covered.
        rows: Range<usize>,
        /// Unroll factor in effect.
        unroll: usize,
        /// Start cycle.
        cycle: u64,
        /// Engine cycles spent.
        duration: u64,
    },
    /// A DFX region was reconfigured.
    Reconfig {
        /// Region reconfigured.
        region: RegionKind,
        /// Start cycle.
        cycle: u64,
        /// Stall cycles charged (smaller than the raw ICAP time when
        /// overlapped reconfiguration is enabled).
        duration: u64,
    },
}

impl TraceEvent {
    /// The cycle at which the event began.
    pub fn start_cycle(&self) -> u64 {
        match self {
            TraceEvent::PhaseStart { cycle, .. }
            | TraceEvent::IterationStart { cycle, .. }
            | TraceEvent::SpmvSegment { cycle, .. }
            | TraceEvent::Reconfig { cycle, .. } => *cycle,
        }
    }

    /// One-line human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            TraceEvent::PhaseStart { phase, cycle } => {
                format!("@{cycle:>10}  phase {phase:?}")
            }
            TraceEvent::IterationStart { iteration, cycle } => {
                format!("@{cycle:>10}  iteration {iteration}")
            }
            TraceEvent::SpmvSegment {
                rows,
                unroll,
                cycle,
                duration,
            } => format!(
                "@{cycle:>10}  spmv rows {}..{} @ U={unroll} ({duration} cycles)",
                rows.start, rows.end
            ),
            TraceEvent::Reconfig {
                region,
                cycle,
                duration,
            } => format!("@{cycle:>10}  reconfigure {region:?} ({duration} stall cycles)"),
        }
    }
}

/// A bounded event trace (drops events past `capacity` to keep long solves
/// affordable; `truncated()` reports whether that happened).
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl ExecutionTrace {
    /// Creates a trace holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ExecutionTrace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped once full).
    pub fn record(&mut self, e: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// `true` if events were dropped after the capacity filled.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of events dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_caps_and_counts_drops() {
        let mut t = ExecutionTrace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::IterationStart {
                iteration: i,
                cycle: i as u64,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn describe_is_nonempty_for_all_variants() {
        let events = [
            TraceEvent::PhaseStart {
                phase: Phase::Loop,
                cycle: 1,
            },
            TraceEvent::IterationStart {
                iteration: 3,
                cycle: 2,
            },
            TraceEvent::SpmvSegment {
                rows: 0..8,
                unroll: 4,
                cycle: 3,
                duration: 10,
            },
            TraceEvent::Reconfig {
                region: RegionKind::SpmvKernel,
                cycle: 4,
                duration: 100,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert!(!e.describe().is_empty());
            assert_eq!(e.start_cycle(), (i + 1) as u64);
        }
    }
}
