//! Property-based tests over the core data structures and invariants.
//!
//! The original proptest-based suite is reimplemented on a local
//! deterministic case harness ([`acamar::sparse::rng::DetRng`]): each
//! property runs over a few hundred seeded random cases, so failures
//! reproduce exactly (the failing case's seed is in the panic message)
//! and the workspace builds with no external registry access.
#![allow(clippy::needless_range_loop)]

use acamar::core::MsidChain;
use acamar::fabric::{spmv, FabricSpec, UnrollSchedule};
use acamar::prelude::*;
use acamar::solvers::jacobi;
use acamar::sparse::io::{read_matrix_market, write_matrix_market};
use acamar::sparse::rng::DetRng;
use acamar::sparse::{analysis, CscMatrix, DenseMatrix};

/// Number of random cases per property.
const CASES: u64 = 200;

/// A well-formed random COO matrix shape: `(n, triplets)`, `n` in
/// `[2, 24)`, up to `4n` triplets with duplicate coordinates allowed.
fn coo_case(rng: &mut DetRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(2..24usize);
    let len = rng.gen_range(0..n * 4);
    let trips = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-10.0..10.0),
            )
        })
        .collect();
    (n, trips)
}

fn build_csr(n: usize, trips: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in trips {
        coo.push(r, c, v).unwrap();
    }
    coo.to_csr()
}

/// Runs `body` once per seeded case, tagging panics with the case seed.
fn for_each_case(cases: u64, test_tag: u64, mut body: impl FnMut(&mut DetRng)) {
    for case in 0..cases {
        let seed = test_tag
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case);
        let mut rng = DetRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

#[test]
fn csr_csc_round_trip() {
    for_each_case(CASES, 1, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        let back = CscMatrix::from_csr(&a).to_csr();
        assert_eq!(a, back);
    });
}

#[test]
fn transpose_is_involutive() {
    for_each_case(CASES, 2, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn spmv_matches_dense() {
    for_each_case(CASES, 3, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        let seed = rng.gen_range(0..1000usize) as u64;
        let x: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + seed) % 17) as f64) - 8.0)
            .collect();
        let sparse_y = a.mul_vec(&x).unwrap();
        let dense_y = a.to_dense().mul_vec(&x);
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            assert!((s - d).abs() <= 1e-9 * (1.0 + d.abs()));
        }
    });
}

#[test]
fn symmetry_via_csc_equals_direct_symmetry() {
    for_each_case(CASES, 4, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        assert_eq!(analysis::symmetric_via_csc(&a), a.is_symmetric(0.0));
    });
}

#[test]
fn matrix_market_round_trip() {
    for_each_case(CASES, 5, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market::<f64, _>(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    });
}

#[test]
fn split_ldu_reassembles() {
    for_each_case(CASES, 6, |rng| {
        let (n, trips) = coo_case(rng);
        let a = build_csr(n, &trips);
        let (l, d, u) = a.split_ldu();
        for i in 0..n {
            for j in 0..n {
                let dij = if i == j { d[i] } else { 0.0 };
                assert_eq!(l.get(i, j) + dij + u.get(i, j), a.get(i, j));
            }
        }
    });
}

#[test]
fn underutilization_is_a_fraction() {
    for_each_case(CASES, 7, |rng| {
        let (n, trips) = coo_case(rng);
        let unroll = rng.gen_range(1..64usize);
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = spmv::execute_matrix(&a, unroll, &FabricSpec::alveo_u55c());
        let ru = e.underutilization();
        assert!((0.0..=1.0).contains(&ru), "ru = {ru}");
        assert_eq!(e.slots_used, a.nnz() as u64);
        assert!(e.slots_issued >= e.slots_used);
    });
}

#[test]
fn unroll_one_never_wastes_slots() {
    for_each_case(CASES, 8, |rng| {
        let (n, trips) = coo_case(rng);
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = spmv::execute_matrix(&a, 1, &FabricSpec::alveo_u55c());
        assert_eq!(e.underutilization(), 0.0);
    });
}

#[test]
fn jacobi_converges_on_random_dominant_systems() {
    for_each_case(100, 9, |rng| {
        let n = rng.gen_range(8..80usize);
        let seed = rng.gen_range(0..500usize) as u64;
        let a = generate::diagonally_dominant::<f64>(
            n,
            generate::RowDistribution::Uniform { min: 1, max: 4 },
            1.6,
            seed,
        );
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &b, None, &ConvergenceCriteria::paper(), &mut k).unwrap();
        assert!(rep.converged(), "outcome {:?}", rep.outcome);
        // the solution actually satisfies the system
        let r = a.mul_vec(&rep.solution).unwrap();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let rn: f64 = r
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(rn / bn < 1e-4, "residual {}", rn / bn);
    });
}

#[test]
fn dense_solve_has_small_residual() {
    for_each_case(100, 10, |rng| {
        let n = rng.gen_range(2..12usize);
        // random strictly dominant dense system => nonsingular
        let mut a = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    });
}

#[test]
fn uniform_schedule_never_reconfigures() {
    for_each_case(CASES, 11, |rng| {
        let nrows = rng.gen_range(1..5000usize);
        let u = rng.gen_range(1..128usize);
        let s = UnrollSchedule::uniform(nrows, u);
        assert_eq!(s.changes_per_pass(), 0);
        assert_eq!(s.max_unroll(), u);
    });
}

#[test]
fn ell_padding_equals_fabric_underutilization_at_width() {
    for_each_case(CASES, 12, |rng| {
        use acamar::sparse::EllMatrix;
        let (n, trips) = coo_case(rng);
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = EllMatrix::from_csr(&a);
        let w = e.width();
        // Only comparable when no row is empty (the engine skips empty
        // rows; ELL still pads them) and the width is positive.
        if w == 0 || (0..a.nrows()).any(|i| a.row_nnz(i) == 0) {
            return;
        }
        let exec = spmv::execute_rows(&a, 0..a.nrows(), w, &FabricSpec::alveo_u55c());
        assert!((e.padding_fraction() - exec.underutilization()).abs() < 1e-12);
    });
}

// ---------------------------------------------------------------------------
// MSID coalescing properties (paper Algorithm 4).
//
// The MSID chain's whole contract: it may merge adjacent row sets' unroll
// factors but must never *add* reconfigurations, never invent factors the
// trace didn't produce, and the resulting schedule must still tile the row
// space with legal unroll factors.
// ---------------------------------------------------------------------------

fn events(f: &[usize]) -> usize {
    f.windows(2).filter(|w| w[0] != w[1]).count()
}

#[test]
fn msid_events_never_increase_with_stages() {
    for_each_case(CASES, 13, |rng| {
        let len = rng.gen_range(1..128usize);
        let factors: Vec<usize> = (0..len).map(|_| rng.gen_range(1..40usize)).collect();
        let tol = rng.gen_range(0.0..1.0);
        let mut prev = events(&factors);
        for stages in 1..10 {
            let out = MsidChain::new(stages, tol).optimize_factors(&factors);
            let e = events(&out);
            assert!(e <= prev, "stages {stages} raised events {prev} -> {e}");
            prev = e;
        }
    });
}

#[test]
fn msid_coalesced_never_exceeds_raw_reconfigurations() {
    // The coalesced schedule never has more reconfigurations than the raw
    // per-set schedule, at any stage count or tolerance.
    for_each_case(CASES, 14, |rng| {
        let len = rng.gen_range(1..128usize);
        let factors: Vec<usize> = (0..len).map(|_| rng.gen_range(1..64usize)).collect();
        let stages = rng.gen_range(0..16usize);
        let tol = rng.gen_range(0.0..2.0);
        let out = MsidChain::new(stages, tol).optimize_factors(&factors);
        assert!(
            events(&out) <= events(&factors),
            "coalesced {} > raw {} (stages {stages}, tol {tol})",
            events(&out),
            events(&factors)
        );
    });
}

#[test]
fn msid_output_values_come_from_the_input() {
    for_each_case(CASES, 15, |rng| {
        let len = rng.gen_range(1..64usize);
        let factors: Vec<usize> = (0..len).map(|_| rng.gen_range(1..40usize)).collect();
        let stages = rng.gen_range(0..10usize);
        let tol = rng.gen_range(0.0..1.0);
        let out = MsidChain::new(stages, tol).optimize_factors(&factors);
        assert_eq!(out.len(), factors.len());
        for v in &out {
            assert!(factors.contains(v));
        }
    });
}

#[test]
fn msid_planned_unrolls_stay_within_the_fabric_legal_range() {
    // Through the full Fine-Grained unit: every scheduled unroll factor
    // stays in [1, max_unroll] regardless of matrix shape or MSID setting.
    for_each_case(60, 16, |rng| {
        let nrows = rng.gen_range(1..1200usize);
        let rate = rng.gen_range(1..64usize);
        let r_opt = rng.gen_range(0..12usize);
        let max_unroll = rng.gen_range(1..64usize);
        let a: CsrMatrix<f32> = generate::random_pattern(
            nrows,
            generate::RowDistribution::Uniform { min: 1, max: 40 },
            rng.gen_range(0..1000usize) as u64,
        );
        let cfg = acamar::core::AcamarConfig {
            max_unroll,
            ..acamar::core::AcamarConfig::paper()
                .with_sampling_rate(rate)
                .with_r_opt(r_opt)
        };
        let plan = acamar::core::FineGrainedReconfigUnit::new(cfg).plan(&a);
        for e in plan.schedule.entries() {
            assert!(
                (1..=max_unroll).contains(&e.unroll),
                "unroll {} outside [1, {max_unroll}]",
                e.unroll
            );
        }
        assert!(plan.reconfigs_after_msid <= plan.reconfigs_before_msid);
    });
}

#[test]
fn schedules_tile_the_row_space() {
    // Covers every row set exactly once: entries are contiguous, start at
    // 0, end at nrows, and adjacent entries always differ in unroll
    // (merged otherwise).
    for_each_case(60, 17, |rng| {
        let nrows = rng.gen_range(1..2000usize);
        let rate = rng.gen_range(1..64usize);
        let a: CsrMatrix<f32> = generate::random_pattern(
            nrows,
            generate::RowDistribution::Uniform { min: 1, max: 6 },
            rate as u64,
        );
        let plan = acamar::core::FineGrainedReconfigUnit::new(
            acamar::core::AcamarConfig::paper().with_sampling_rate(rate),
        )
        .plan(&a);
        let entries = plan.schedule.entries();
        assert_eq!(entries.first().unwrap().rows.start, 0);
        assert_eq!(entries.last().unwrap().rows.end, nrows);
        for w in entries.windows(2) {
            assert_eq!(w[0].rows.end, w[1].rows.start);
            // adjacent entries were merged, so unrolls must differ
            assert_ne!(w[0].unroll, w[1].unroll);
        }
        // every tBuffer row set is covered exactly once: total set spans
        // equal the row count
        let covered: usize = plan
            .tbuffers
            .iter()
            .flat_map(|t| t.sets().iter())
            .map(|r| r.end - r.start)
            .sum();
        assert_eq!(covered, nrows);
    });
}
