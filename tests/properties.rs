//! Property-based tests over the core data structures and invariants.
#![allow(clippy::needless_range_loop)]

use acamar::core::MsidChain;
use acamar::fabric::{spmv, FabricSpec, UnrollSchedule};
use acamar::prelude::*;
use acamar::solvers::jacobi;
use acamar::sparse::io::{read_matrix_market, write_matrix_market};
use acamar::sparse::{analysis, CscMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a well-formed random COO matrix (n, triplets).
fn coo_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..24).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -10.0_f64..10.0);
        (Just(n), proptest::collection::vec(entry, 0..n * 4))
    })
}

fn build_csr(n: usize, trips: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in trips {
        coo.push(r, c, v).unwrap();
    }
    coo.to_csr()
}

proptest! {
    #[test]
    fn csr_csc_round_trip((n, trips) in coo_strategy()) {
        let a = build_csr(n, &trips);
        let back = CscMatrix::from_csr(&a).to_csr();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn transpose_is_involutive((n, trips) in coo_strategy()) {
        let a = build_csr(n, &trips);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_matches_dense((n, trips) in coo_strategy(), seed in 0u64..1000) {
        let a = build_csr(n, &trips);
        let x: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) % 17) as f64) - 8.0).collect();
        let sparse_y = a.mul_vec(&x).unwrap();
        let dense_y = a.to_dense().mul_vec(&x);
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            prop_assert!((s - d).abs() <= 1e-9 * (1.0 + d.abs()));
        }
    }

    #[test]
    fn symmetry_via_csc_equals_direct_symmetry((n, trips) in coo_strategy()) {
        let a = build_csr(n, &trips);
        prop_assert_eq!(analysis::symmetric_via_csc(&a), a.is_symmetric(0.0));
    }

    #[test]
    fn matrix_market_round_trip((n, trips) in coo_strategy()) {
        let a = build_csr(n, &trips);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market::<f64, _>(buf.as_slice()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn split_ldu_reassembles((n, trips) in coo_strategy()) {
        let a = build_csr(n, &trips);
        let (l, d, u) = a.split_ldu();
        for i in 0..n {
            for j in 0..n {
                let dij = if i == j { d[i] } else { 0.0 };
                prop_assert_eq!(l.get(i, j) + dij + u.get(i, j), a.get(i, j));
            }
        }
    }

    #[test]
    fn underutilization_is_a_fraction(
        (n, trips) in coo_strategy(),
        unroll in 1usize..64,
    ) {
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = spmv::execute_matrix(&a, unroll, &FabricSpec::alveo_u55c());
        let ru = e.underutilization();
        prop_assert!((0.0..=1.0).contains(&ru), "ru = {}", ru);
        prop_assert_eq!(e.slots_used, a.nnz() as u64);
        prop_assert!(e.slots_issued >= e.slots_used);
    }

    #[test]
    fn unroll_one_never_wastes_slots((n, trips) in coo_strategy()) {
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = spmv::execute_matrix(&a, 1, &FabricSpec::alveo_u55c());
        prop_assert_eq!(e.underutilization(), 0.0);
    }

    #[test]
    fn msid_events_never_increase_with_stages(
        factors in proptest::collection::vec(1usize..40, 1..128),
        tol in 0.0f64..1.0,
    ) {
        let events = |f: &[usize]| f.windows(2).filter(|w| w[0] != w[1]).count();
        let mut prev = events(&factors);
        for stages in 1..10 {
            let out = MsidChain::new(stages, tol).optimize_factors(&factors);
            let e = events(&out);
            prop_assert!(e <= prev, "stages {} raised events {} -> {}", stages, prev, e);
            prev = e;
        }
    }

    #[test]
    fn msid_output_values_come_from_the_input(
        factors in proptest::collection::vec(1usize..40, 1..64),
        stages in 0usize..10,
        tol in 0.0f64..1.0,
    ) {
        let out = MsidChain::new(stages, tol).optimize_factors(&factors);
        prop_assert_eq!(out.len(), factors.len());
        for v in &out {
            prop_assert!(factors.contains(v));
        }
    }

    #[test]
    fn schedules_tile_the_row_space(
        nrows in 1usize..2000,
        rate in 1usize..64,
    ) {
        let a: CsrMatrix<f32> = generate::random_pattern(
            nrows,
            generate::RowDistribution::Uniform { min: 1, max: 6 },
            rate as u64,
        );
        let plan = acamar::core::FineGrainedReconfigUnit::new(
            acamar::core::AcamarConfig::paper().with_sampling_rate(rate),
        )
        .plan(&a);
        let entries = plan.schedule.entries();
        prop_assert_eq!(entries.first().unwrap().rows.start, 0);
        prop_assert_eq!(entries.last().unwrap().rows.end, nrows);
        for w in entries.windows(2) {
            prop_assert_eq!(w[0].rows.end, w[1].rows.start);
            // adjacent entries were merged, so unrolls must differ
            prop_assert_ne!(w[0].unroll, w[1].unroll);
        }
    }

    #[test]
    fn jacobi_converges_on_random_dominant_systems(
        n in 8usize..80,
        seed in 0u64..500,
    ) {
        let a = generate::diagonally_dominant::<f64>(
            n,
            generate::RowDistribution::Uniform { min: 1, max: 4 },
            1.6,
            seed,
        );
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &b, None, &ConvergenceCriteria::paper(), &mut k).unwrap();
        prop_assert!(rep.converged(), "outcome {:?}", rep.outcome);
        // the solution actually satisfies the system
        let r = a.mul_vec(&rep.solution).unwrap();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let rn: f64 = r.iter().zip(&b).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        prop_assert!(rn / bn < 1e-4, "residual {}", rn / bn);
    }

    #[test]
    fn dense_solve_has_small_residual(
        n in 2usize..12,
        seed in 0u64..200,
    ) {
        // random strictly dominant dense system => nonsingular
        let mut a = DenseMatrix::<f64>::zeros(n, n);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn uniform_schedule_never_reconfigures(nrows in 1usize..5000, u in 1usize..128) {
        let s = UnrollSchedule::uniform(nrows, u);
        prop_assert_eq!(s.changes_per_pass(), 0);
        prop_assert_eq!(s.max_unroll(), u);
    }
}

proptest! {
    #[test]
    fn ell_padding_equals_fabric_underutilization_at_width(
        (n, trips) in coo_strategy(),
    ) {
        use acamar::sparse::EllMatrix;
        let a: CsrMatrix<f32> = build_csr(n, &trips).cast();
        let e = EllMatrix::from_csr(&a);
        let w = e.width();
        // Only comparable when no row is empty (the engine skips empty
        // rows; ELL still pads them) and the width is positive.
        prop_assume!(w > 0);
        prop_assume!((0..a.nrows()).all(|i| a.row_nnz(i) > 0));
        let exec = spmv::execute_rows(&a, 0..a.nrows(), w, &FabricSpec::alveo_u55c());
        prop_assert!((e.padding_fraction() - exec.underutilization()).abs() < 1e-12);
    }
}
