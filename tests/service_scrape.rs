//! Scrape-endpoint suite: the `ScrapeServer` under concurrent scrapes,
//! malformed requests, and shutdown.
//!
//! The endpoint is a std-only HTTP/1.1 responder; these tests speak raw
//! TCP to it, the same way a Prometheus scraper (or a confused client)
//! would.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::service::{ScrapeServer, Service, ServiceConfig, ServiceRequest};
use acamar::sparse::{generate, CsrMatrix};
use acamar::telemetry::RingRecorder;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn acamar() -> Acamar {
    Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
}

fn service_with_ring() -> (Arc<Service<f64>>, Arc<RingRecorder>) {
    let ring = Arc::new(RingRecorder::new(1 << 14));
    let service = Arc::new(Service::<f64>::with_recorder(
        acamar(),
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(64),
        Arc::clone(&ring),
    ));
    (service, ring)
}

fn request(a: &Arc<CsrMatrix<f64>>, k: usize) -> ServiceRequest<f64> {
    let b: Vec<f64> = (0..a.nrows())
        .map(|i| 1.0 + ((i + k) % 7) as f64 * 0.1)
        .collect();
    ServiceRequest::new(Arc::clone(a), b)
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("response");
    out
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw).expect("request");
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

/// Scrapes racing a live batch: `/metrics` and `/trace` from several
/// client threads while jobs stream through the service. Every response
/// must be a well-formed 200 with a consistent Content-Length.
#[test]
fn concurrent_scrapes_during_a_batch_stay_well_formed() {
    let (service, _ring) = service_with_ring();
    let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let a = Arc::new(generate::poisson2d::<f64>(10, 10));

    let scrapers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let path = if i % 2 == 0 { "/metrics" } else { "/trace" };
                    let resp = get(addr, path);
                    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
                    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
                    let len: usize = head
                        .lines()
                        .find_map(|l| l.strip_prefix("Content-Length: "))
                        .expect("content length")
                        .parse()
                        .expect("numeric");
                    assert_eq!(body.len(), len, "advertised length matches body");
                }
            })
        })
        .collect();

    // Meanwhile, traffic.
    for k in 0..32 {
        let t = service.submit(request(&a, k)).expect("admits");
        assert!(t.wait().expect("solves").converged());
    }
    for s in scrapers {
        s.join().expect("scraper thread");
    }
    // A final metrics scrape reflects the finished batch.
    let metrics = get(addr, "/metrics");
    assert!(metrics.contains("acamar_service_shard_jobs_total"));
    assert!(metrics.contains("acamar_service_shard_restarts_total"));
    let health = get(addr, "/health");
    assert!(health.contains("\"completions\":32"), "{health}");
}

/// Garbage in, typed status out: the endpoint answers malformed request
/// lines, non-GET methods, and unknown paths without wedging the accept
/// loop.
#[test]
fn malformed_requests_get_typed_statuses_and_do_not_wedge_the_loop() {
    let (service, _ring) = service_with_ring();
    let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let post = send_raw(addr, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(post.starts_with("HTTP/1.1 405"), "{post}");

    let missing = send_raw(addr, b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // Not even HTTP. The server answers something (or closes); either
    // way the next real scrape must still work.
    let _ = send_raw(addr, b"\x00\x01\x02garbage\r\n\r\n");
    let _ = send_raw(addr, b"GET\r\n\r\n");

    let metrics = get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
}

/// A client that connects and sends nothing: the per-connection read
/// timeout frees the loop, and subsequent scrapes succeed.
#[test]
fn silent_client_times_out_without_blocking_other_scrapes() {
    let (service, _ring) = service_with_ring();
    let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let silent = TcpStream::connect(addr).expect("connect");
    // The accept loop is single-threaded: once the silent connection's
    // read times out (500 ms), the pending scrape is served.
    let metrics = get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    drop(silent);
}

/// Dropping the server stops the accept loop promptly and releases the
/// port; scrapes after shutdown are refused.
#[test]
fn shutdown_is_clean_and_prompt() {
    let (service, _ring) = service_with_ring();
    let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    assert!(get(addr, "/healthz").ends_with("ok\n"));
    drop(server);
    // The listener is gone: either the connect fails outright, or an
    // OS-accepted backlog connection yields no HTTP response.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .expect("timeout");
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(
                !out.starts_with("HTTP/1.1 200"),
                "served after shutdown: {out}"
            );
        }
    }
    // The service itself is unaffected by the endpoint's shutdown.
    let a = Arc::new(generate::poisson2d::<f64>(8, 8));
    let t = service.submit(request(&a, 0)).expect("admits");
    assert!(t.wait().expect("solves").converged());
}
