//! Property test for the compiled SpMV execution plans: the band-parallel
//! walk must be **bitwise identical** to the serial compiled walk (and the
//! serial compiled walk to the generic CSR walk) at 1, 2, and 8 threads.
//!
//! Band boundaries double as partition points, so a thread never splits a
//! band and every row keeps its single-accumulator summation chain — the
//! result cannot depend on the thread count. This suite pins that claim
//! across 64 seeded random patterns drawn from every `RowDistribution`
//! family, with plans compiled both from the default hint and from the
//! MSID schedule the fine-grained reconfiguration unit actually produces.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::sparse::generate::{self, RowDistribution};
use acamar::sparse::rng::DetRng;
use acamar::sparse::{CompiledSpmv, CsrMatrix};

/// Seeded random patterns per distribution family.
const CASES_PER_FAMILY: u64 = 16;

/// Thread counts the partition must be exact under.
const THREADS: [usize; 3] = [1, 2, 8];

fn families(case: u64) -> RowDistribution {
    match case % 4 {
        0 => RowDistribution::Constant(3 + (case % 5) as usize),
        1 => RowDistribution::Uniform {
            min: 1,
            max: 9 + (case % 8) as usize,
        },
        2 => RowDistribution::Bimodal {
            low: 2,
            high: 24 + (case % 16) as usize,
            high_fraction: 0.1,
        },
        _ => RowDistribution::PowerLaw {
            min: 1,
            max: 60,
            exponent: 1.8,
        },
    }
}

/// Runs the plan over `x` with `threads` workers, each executing a span of
/// whole bands into its slice of `y` — the same decomposition
/// `SoftwareKernels` uses for its band-parallel path.
fn parallel_execute(
    plan: &CompiledSpmv,
    a: &CsrMatrix<f64>,
    x: &[f64],
    threads: usize,
) -> Vec<f64> {
    let mut y = vec![0.0_f64; a.nrows()];
    let spans = plan.partition(threads);
    std::thread::scope(|s| {
        let mut rest = y.as_mut_slice();
        for span in spans {
            let rows = plan.span_rows(span.clone());
            let (head, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            s.spawn(move || plan.execute_span(span, a, x, head));
        }
    });
    y
}

fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: row {i} differs ({g:?} vs {w:?})"
        );
    }
}

#[test]
fn parallel_compiled_spmv_is_bitwise_identical_to_serial() {
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    let total = CASES_PER_FAMILY * 4;
    for case in 0..total {
        let seed = 0xC0DE_0000 + case;
        let n = 48 + (case as usize * 29) % 320;
        let a = generate::random_pattern::<f64>(n, families(case), seed);
        let mut rng = DetRng::seed_from_u64(seed ^ 0x5EED);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();

        // Serial compiled walk must reproduce the generic CSR walk exactly.
        let expected = a.mul_vec(&x).unwrap();
        let schedule_plan = acamar.analyze(&a).compiled;
        let default_plan = CompiledSpmv::compile_default(&a);
        for (plan, tag) in [(&*schedule_plan, "schedule"), (&default_plan, "default")] {
            let mut serial = vec![0.0_f64; n];
            plan.execute(&a, &x, &mut serial).unwrap();
            assert_bits_eq(&serial, &expected, &format!("case {case} {tag} serial"));

            // ...and the band-parallel walk must reproduce the serial one
            // at every thread count.
            for threads in THREADS {
                let par = parallel_execute(plan, &a, &x, threads);
                assert_bits_eq(
                    &par,
                    &serial,
                    &format!("case {case} {tag} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn partition_tiles_bands_for_every_thread_count() {
    for case in 0..16u64 {
        let n = 64 + (case as usize * 37) % 200;
        let a = generate::random_pattern::<f64>(n, families(case), 0x0BAD_5EED + case);
        let plan = CompiledSpmv::compile_default(&a);
        for threads in [1, 2, 3, 8, 64] {
            let spans = plan.partition(threads);
            assert!(!spans.is_empty());
            assert!(spans.len() <= threads.max(1));
            // Spans tile the row space in order, never splitting a band.
            let mut next_row = 0;
            for span in spans {
                let rows = plan.span_rows(span);
                assert_eq!(rows.start, next_row);
                next_row = rows.end;
            }
            assert_eq!(next_row, n);
        }
    }
}
