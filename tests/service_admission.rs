//! Admission, backpressure, deadline, and determinism suite for the
//! serving layer.
//!
//! Every test drives the queue into a known state first —
//! [`Service::pause`] holds the dispatchers while submissions build the
//! queue, so what the scheduler sees is exact, not racy — and then
//! releases it and asserts on typed errors, completion order (via the
//! global completion index), and bitwise solution identity.
//!
//! Each scenario runs at 1, 2, and 4 shards where shard count is not
//! itself the thing pinned down.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::service::{
    AdmissionError, Priority, RoutingPolicy, Service, ServiceConfig, ServiceRequest,
};
use acamar::sparse::{generate, CsrMatrix};
use acamar::telemetry::{Counter, RingRecorder};
use std::sync::Arc;
use std::time::Duration;

fn acamar() -> Acamar {
    Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
}

fn system() -> Arc<CsrMatrix<f64>> {
    Arc::new(generate::poisson2d::<f64>(10, 10))
}

fn request(a: &Arc<CsrMatrix<f64>>, scale: f64) -> ServiceRequest<f64> {
    ServiceRequest::new(Arc::clone(a), vec![scale; a.nrows()])
}

#[test]
fn queue_full_rejection_is_typed_and_carries_retry_after() {
    let capacity = 4;
    let service = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(1)
            .with_queue_capacity(capacity)
            .with_retry_after_floor(Duration::from_millis(2)),
    );
    service.pause();
    let a = system();
    let tickets: Vec<_> = (0..capacity)
        .map(|k| {
            service
                .submit(request(&a, 1.0 + k as f64))
                .expect("under capacity")
        })
        .collect();
    assert_eq!(service.queue_depth(0), capacity);

    let err = service
        .submit(request(&a, 99.0))
        .expect_err("queue is full");
    let AdmissionError::QueueFull {
        shard,
        depth,
        capacity: cap,
        retry_after,
    } = err;
    assert_eq!(shard, 0);
    assert_eq!(depth, capacity);
    assert_eq!(cap, capacity);
    assert!(
        retry_after >= Duration::from_millis(2),
        "retry-after {retry_after:?} must respect the floor"
    );
    assert_eq!(err.retry_after(), retry_after);

    // Backpressure is advisory, not fatal: once the queue drains, the
    // same submission is admitted.
    service.resume();
    for t in tickets {
        assert!(t
            .wait()
            .expect("queued jobs complete after resume")
            .converged());
    }
    let retried = service
        .submit(request(&a, 99.0))
        .expect("drained queue admits");
    assert!(retried.wait().expect("retried job solves").converged());
}

#[test]
fn expired_deadline_jobs_are_shed_before_any_solve() {
    for shards in [1usize, 2, 4] {
        let ring = Arc::new(RingRecorder::new(1024));
        let service = Service::<f64>::with_recorder(
            acamar(),
            ServiceConfig::default().with_shards(shards),
            Arc::clone(&ring),
        );
        service.pause();
        let a = system();
        // A zero deadline has expired by the time any dispatcher sees it.
        let doomed = service
            .submit(request(&a, 1.0).with_deadline(Duration::ZERO))
            .expect("admission ignores the deadline");
        let healthy = service.submit(request(&a, 2.0)).expect("under capacity");
        service.resume();

        let shed = doomed.wait().expect_err("expired deadline must shed");
        assert!(shed.is_shed(), "got {shed:?} instead of Shed");
        assert!(healthy.wait().expect("no deadline, solves").converged());

        // The shed job never reached a solver on any shard: exactly one
        // engine job ran (the healthy one).
        let ran: u64 = (0..shards)
            .map(|s| service.engine(s).counters().jobs_completed)
            .sum();
        assert_eq!(ran, 1, "{shards} shards: shed job must not be solved");
        assert_eq!(ring.counters()[Counter::JobsShed.index()], 1);
        assert_eq!(ring.counters()[Counter::JobsAdmitted.index()], 2);
        assert_eq!(service.dropped_events(), 0);
    }
}

#[test]
fn starvation_bound_promotes_waiting_low_priority_work() {
    let a = system();
    // With an unreachable bound, strict class order wins: the high-
    // priority job overtakes the earlier-queued low-priority one.
    let strict = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(1)
            .with_starvation_bound(Duration::from_secs(3600)),
    );
    strict.pause();
    let low = strict
        .submit(request(&a, 1.0).with_priority(Priority::Low).with_tenant(7))
        .expect("under capacity");
    let high = strict
        .submit(
            request(&a, 2.0)
                .with_priority(Priority::High)
                .with_tenant(8),
        )
        .expect("under capacity");
    strict.resume();
    let (low_result, low_idx) = low.wait_with_index();
    let (high_result, high_idx) = high.wait_with_index();
    assert!(low_result.expect("completes").converged());
    assert!(high_result.expect("completes").converged());
    assert!(
        high_idx < low_idx,
        "unreachable bound: high priority dispatches first ({high_idx} vs {low_idx})"
    );

    // With a zero bound every queued job is already past its bounded
    // wait, so admission order wins and the low-priority tenant is not
    // overtaken — the starvation guarantee, taken to its limit.
    let fair = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(1)
            .with_starvation_bound(Duration::ZERO),
    );
    fair.pause();
    let low = fair
        .submit(request(&a, 1.0).with_priority(Priority::Low).with_tenant(7))
        .expect("under capacity");
    let high = fair
        .submit(
            request(&a, 2.0)
                .with_priority(Priority::High)
                .with_tenant(8),
        )
        .expect("under capacity");
    fair.resume();
    let (low_result, low_idx) = low.wait_with_index();
    let (high_result, high_idx) = high.wait_with_index();
    assert!(low_result.expect("completes").converged());
    assert!(high_result.expect("completes").converged());
    assert!(
        low_idx < high_idx,
        "zero bound: the starved low-priority job dispatches first \
         ({low_idx} vs {high_idx})"
    );
}

#[test]
fn service_results_are_bitwise_identical_to_direct_solve_jobs() {
    let systems: Vec<Arc<CsrMatrix<f64>>> = vec![
        Arc::new(generate::poisson2d::<f64>(8, 8)),
        Arc::new(generate::poisson2d::<f64>(10, 6)),
        Arc::new(generate::poisson1d::<f64>(48)),
        Arc::new(generate::tridiagonal::<f64>(40, -1.0, 4.0, -1.0)),
    ];
    let jobs: Vec<SolveJob<f64>> = (0..32)
        .map(|k| {
            let a = Arc::clone(&systems[k % systems.len()]);
            let rhs = vec![1.0 + (k as f64) * 0.25; a.nrows()];
            SolveJob::new(a, rhs)
        })
        .collect();

    let direct = Engine::with_workers(acamar(), 1).solve_jobs(jobs.clone());
    assert!(direct.all_converged());

    for shards in [1usize, 2, 4] {
        for routing in [RoutingPolicy::Affinity, RoutingPolicy::Random { seed: 11 }] {
            let service = Service::<f64>::new(
                acamar(),
                ServiceConfig::default()
                    .with_shards(shards)
                    .with_queue_capacity(64)
                    .with_routing(routing),
            );
            let tickets: Vec<_> = jobs
                .iter()
                .map(|j| {
                    service
                        .submit(ServiceRequest::new(Arc::clone(&j.matrix), j.rhs.clone()))
                        .expect("under capacity")
                })
                .collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let served = t.wait().expect("solves");
                let reference = direct.results[i].as_ref().expect("solves");
                assert_eq!(
                    served.solve.solution, reference.solve.solution,
                    "{shards} shards / {routing:?}: job {i} solution differs"
                );
                assert_eq!(served.solve.iterations, reference.solve.iterations);
                assert_eq!(served.final_solver(), reference.final_solver());
            }
        }
    }
}

#[test]
fn paused_service_sheds_nothing_and_loses_nothing_on_drop() {
    let ring = Arc::new(RingRecorder::new(4096));
    let service = Service::<f64>::with_recorder(
        acamar(),
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(32),
        Arc::clone(&ring),
    );
    service.pause();
    let a = system();
    let tickets: Vec<_> = (0..8)
        .map(|k| {
            service
                .submit(request(&a, 1.0 + k as f64))
                .expect("under capacity")
        })
        .collect();
    // Drop while paused with a full queue: shutdown drains everything.
    drop(service);
    for t in tickets {
        assert!(t.wait().expect("drained on shutdown").converged());
    }
    let counters = ring.counters();
    assert_eq!(counters[Counter::JobsAdmitted.index()], 8);
    assert_eq!(counters[Counter::JobsShed.index()], 0);
    assert_eq!(counters[Counter::JobsRejected.index()], 0);
    assert_eq!(ring.dropped(), 0, "no telemetry events may be dropped");
}
