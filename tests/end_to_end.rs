//! Cross-crate integration tests: the full pipeline from matrix
//! generation through analysis, hardware-modeled solving, and metrics.

use acamar::core::{Acamar, AcamarConfig, MatrixStructureUnit};
use acamar::fabric::{FabricKernels, FabricSpec, StaticAccelerator, UnrollSchedule};
use acamar::gpu::{model_csr_spmv, GpuSpec};
use acamar::prelude::*;
use acamar::solvers::{solve_with, Kernels};
use acamar::sparse::io::{read_matrix_market, write_matrix_market};

fn criteria() -> ConvergenceCriteria {
    ConvergenceCriteria::paper().with_max_iterations(3000)
}

fn config() -> AcamarConfig {
    AcamarConfig::paper().with_criteria(criteria())
}

#[test]
fn acamar_solution_matches_software_solver_bit_for_bit() {
    let a = generate::poisson2d::<f32>(12, 12);
    let b = vec![1.0_f32; 144];
    let report = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&a, &b)
        .unwrap();
    assert!(report.converged());

    // The same solver in pure software must produce the identical iterate:
    // the fabric model charges cycles but never changes the arithmetic.
    let mut sw = SoftwareKernels::new();
    let sw_report = solve_with(report.final_solver(), &a, &b, None, &criteria(), &mut sw).unwrap();
    assert_eq!(report.solve.iterations, sw_report.iterations);
    assert_eq!(report.solve.solution, sw_report.solution);
}

#[test]
fn fabric_and_software_kernels_agree_for_all_three_solvers() {
    let a = generate::diagonally_dominant::<f32>(
        200,
        generate::RowDistribution::Uniform { min: 2, max: 9 },
        1.5,
        3,
    );
    let b = vec![1.0_f32; 200];
    for kind in SolverKind::ACAMAR {
        let mut hw =
            FabricKernels::new(FabricSpec::alveo_u55c(), UnrollSchedule::uniform(200, 4), 4);
        let hw_rep = solve_with(kind, &a, &b, None, &criteria(), &mut hw).unwrap();
        let mut sw = SoftwareKernels::new();
        let sw_rep = solve_with(kind, &a, &b, None, &criteria(), &mut sw).unwrap();
        assert_eq!(hw_rep.outcome, sw_rep.outcome, "{kind}");
        assert_eq!(hw_rep.solution, sw_rep.solution, "{kind}");
        assert_eq!(
            Kernels::<f32>::counts(&hw).spmv_flops,
            Kernels::<f32>::counts(&sw).spmv_flops,
            "{kind}"
        );
    }
}

#[test]
fn matrix_market_round_trip_preserves_solve_behavior() {
    let original = generate::convection_diffusion_2d::<f32>(12, 12, 3.0);
    let mut buf = Vec::new();
    write_matrix_market(&original, &mut buf).unwrap();
    let reloaded = read_matrix_market::<f32, _>(buf.as_slice()).unwrap();
    assert_eq!(original, reloaded);

    let b = vec![1.0_f32; original.nrows()];
    let r1 = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&original, &b)
        .unwrap();
    let r2 = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&reloaded, &b)
        .unwrap();
    assert_eq!(r1.solve.solution, r2.solve.solution);
    assert_eq!(r1.final_solver(), r2.final_solver());
}

#[test]
fn structure_unit_recommendation_agrees_with_outcome_on_easy_classes() {
    // For well-behaved classes, the first recommendation already works.
    let cases: Vec<CsrMatrix<f32>> = vec![
        generate::diagonally_dominant(
            150,
            generate::RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            1,
        ),
        generate::jacobi_divergent_spd(150, 0.7, 1, 0.01, 2),
        generate::convection_diffusion_2d(12, 12, 2.0),
    ];
    for a in cases {
        let decision = MatrixStructureUnit::new().analyze(&a);
        let b = vec![1.0_f32; a.nrows()];
        let rep = Acamar::new(FabricSpec::alveo_u55c(), config())
            .run(&a, &b)
            .unwrap();
        assert!(rep.converged());
        assert_eq!(rep.final_solver(), decision.solver);
        assert_eq!(rep.solver_switches(), 0);
    }
}

#[test]
fn acamar_dominates_static_design_on_mixed_sparsity() {
    // A workload with a sparse region and a dense region: no single URB
    // serves both, but Acamar schedules each set separately.
    let mut coo = CooMatrix::<f32>::new(512, 512);
    for i in 0..256 {
        // sparse half: 3 entries per row
        for k in 0..3 {
            let j = (i * 7 + k * 31) % 512;
            let _ = coo.push(i, j, 0.01);
        }
    }
    for i in 256..512 {
        // dense half: 24 entries per row
        for k in 0..24 {
            let j = (i * 11 + k * 13) % 512;
            let _ = coo.push(i, j, 0.01);
        }
    }
    for i in 0..512 {
        coo.push(i, i, 10.0).unwrap();
    }
    let a = coo.to_csr();
    let b = vec![1.0_f32; 512];

    let acamar = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&a, &b)
        .unwrap();
    assert!(acamar.converged());

    for urb in [4usize, 24] {
        let run = StaticAccelerator::new(FabricSpec::alveo_u55c(), acamar.final_solver(), urb)
            .run(&a, &b, &criteria())
            .unwrap();
        assert!(run.solve.converged());
        let better_ru =
            acamar.stats.spmv.underutilization() <= run.stats.spmv.underutilization() + 1e-9;
        let better_latency = acamar.stats.cycles.spmv <= run.stats.cycles.spmv;
        assert!(
            better_ru || better_latency,
            "URB={urb}: acamar RU {:.3} vs {:.3}, cycles {} vs {}",
            acamar.stats.spmv.underutilization(),
            run.stats.spmv.underutilization(),
            acamar.stats.cycles.spmv,
            run.stats.cycles.spmv
        );
    }
}

#[test]
fn gpu_model_and_fabric_agree_on_workload_size() {
    let a = generate::poisson2d::<f32>(32, 32);
    let g = model_csr_spmv(&GpuSpec::gtx1650_super(), &a);
    assert_eq!(g.lanes_used, a.nnz() as u64);
    // The fabric, per Eq. 5, also processes exactly nnz useful slots.
    let exec = acamar::fabric::spmv::execute_matrix(&a, 8, &FabricSpec::alveo_u55c());
    assert_eq!(exec.slots_used, a.nnz() as u64);
}

#[test]
fn matrices_larger_than_the_paper_chunk_solve_through_chunked_planning() {
    let w = acamar::datasets::stress_suite()
        .into_iter()
        .find(|w| w.kind == acamar::datasets::StressKind::MultiChunk)
        .expect("suite has a multi-chunk workload");
    let a = w.matrix();
    assert!(a.nrows() > acamar::sparse::chunk::PAPER_CHUNK_ROWS);
    let rep = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&a, &w.rhs())
        .unwrap();
    assert!(rep.converged());
    // one tBuffer per 4096-row chunk
    assert_eq!(
        rep.plan.tbuffers.len(),
        a.nrows().div_ceil(acamar::sparse::chunk::PAPER_CHUNK_ROWS)
    );
    // schedule still tiles the full row space
    assert_eq!(
        rep.plan.schedule.entries().last().unwrap().rows.end,
        a.nrows()
    );
}

#[test]
fn warm_start_reduces_iterations() {
    let a = generate::poisson2d::<f32>(16, 16);
    let b = vec![1.0_f32; 256];
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), config());
    let cold = acamar.run(&a, &b).unwrap();
    assert!(cold.converged());
    // warm start from the converged solution: immediate convergence
    let warm = acamar
        .run_with_guess(&a, &b, Some(&cold.solve.solution))
        .unwrap();
    assert!(warm.converged());
    assert!(
        warm.solve.iterations <= 2,
        "warm start took {} iterations",
        warm.solve.iterations
    );
}

#[test]
fn divergent_static_design_is_rescued_by_acamar() {
    // Symmetric indefinite, not dominant: CG-only hardware fails.
    let a = generate::spread_spectrum_blocks::<f32>(300, 0.6, 10.0, true, 11);
    let b = vec![1.0_f32; 300];
    let static_run =
        StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::ConjugateGradient, 8)
            .run(&a, &b, &criteria())
            .unwrap();
    assert!(!static_run.solve.converged());

    let rep = Acamar::new(FabricSpec::alveo_u55c(), config())
        .run(&a, &b)
        .unwrap();
    assert!(rep.converged());
    assert!(rep.solver_switches() >= 1);
}
