//! Full Table II reproduction as an integration test: all 25 dataset
//! analogs, measured triples, and the Acamar column.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::solvers::SolverKind;
use acamar_datasets::{suite, verify};

#[test]
fn all_25_rows_match_the_paper_and_acamar_always_converges() {
    let mut mismatches = Vec::new();
    let mut acamar_failures = Vec::new();
    for d in suite() {
        let triple = verify::measure_triple(&d);
        if !triple.matches(&d) {
            mismatches.push(format!(
                "{}: expected {} measured {}",
                d.id,
                d.expected.marks(),
                triple.measured.marks()
            ));
        }
        let cfg = AcamarConfig::paper().with_criteria(verify::table2_criteria());
        let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
            .run(&d.matrix(), &d.rhs())
            .unwrap();
        if !rep.converged() {
            acamar_failures.push(format!("{}: {:?}", d.id, rep.attempts));
        }
        // The final solver must be one the paper's triple says converges.
        if rep.converged() {
            let ok = match rep.final_solver() {
                SolverKind::Jacobi => d.expected.jacobi,
                SolverKind::ConjugateGradient => d.expected.cg,
                SolverKind::BiCgStab => d.expected.bicgstab,
                other => panic!("{}: unexpected solver {other}", d.id),
            };
            assert!(
                ok,
                "{}: Acamar finished with {} which the paper marks ✗",
                d.id,
                rep.final_solver()
            );
        }
    }
    assert!(
        mismatches.is_empty(),
        "triple mismatches:\n{}",
        mismatches.join("\n")
    );
    assert!(
        acamar_failures.is_empty(),
        "acamar failures:\n{}",
        acamar_failures.join("\n")
    );
}

#[test]
fn no_single_solver_covers_the_suite() {
    // The paper's core motivation: every static choice fails somewhere.
    let s = suite();
    assert!(s.iter().any(|d| !d.expected.jacobi));
    assert!(s.iter().any(|d| !d.expected.cg));
    assert!(s.iter().any(|d| !d.expected.bicgstab));
    // ... and Acamar's union covers everything:
    assert!(s
        .iter()
        .all(|d| d.expected.jacobi || d.expected.cg || d.expected.bicgstab));
}
