//! Sequence replay determinism: a drifting matrix sequence solved twice
//! under `DeterminismPolicy::Deterministic` must reproduce itself exactly
//! — the same plan actions (reuse / patch / recompile), the same
//! warm-start verdicts, and bitwise-identical solutions — including under
//! seeded chaos injection, where warm-start rejections must fall back to
//! the deterministic cold start without breaking the replay contract.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, PlanAction, SequenceConfig, SequenceJob, SequenceStats, WarmStart};
use acamar::fabric::FabricSpec;
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::{generate, CsrMatrix};
use std::sync::Arc;

fn acamar() -> Acamar {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    Acamar::new(FabricSpec::alveo_u55c(), cfg)
}

/// Drops the symmetric pair `(r, c)`/`(c, r)`, changing the pattern in
/// exactly two rows while preserving symmetry and diagonal dominance.
fn drop_pair(a: &CsrMatrix<f64>, r: usize, c: usize) -> CsrMatrix<f64> {
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (rc, rv) = a.row(i);
        for (&j, &v) in rc.iter().zip(rv) {
            if (i == r && j == c) || (i == c && j == r) {
                continue;
            }
            cols.push(j);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    CsrMatrix::try_from_parts(a.nrows(), a.ncols(), row_ptr, cols, vals).unwrap()
}

/// The evolving workload: mostly fixed pattern, two small drifts (band
/// patches), one structural break (full recompile), varying right-hand
/// sides throughout.
fn workload() -> Vec<SequenceJob<f64>> {
    let mut a = Arc::new(generate::poisson2d::<f64>(16, 16));
    // A different *shape*, so the delta is undefined and the sequence
    // must re-run the full analysis.
    let fresh = Arc::new(generate::poisson2d::<f64>(18, 18));
    let mut jobs = Vec::new();
    for k in 0..10usize {
        match k {
            3 => a = Arc::new(drop_pair(&a, 7, 8)),
            6 => a = Arc::new(drop_pair(&a, 100, 101)),
            8 => a = Arc::clone(&fresh), // new shape entirely
            _ => {}
        }
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| 0.5 + ((i * 7 + k) % 23) as f64 * 0.04)
            .collect();
        jobs.push(SequenceJob::new(Arc::clone(&a), b));
    }
    jobs
}

/// One full sequence run on a fresh engine; returns per-step verdicts and
/// solutions plus the final stats.
type StepTrace = Vec<(
    PlanAction,
    WarmStart,
    Result<(bool, usize, Vec<f64>), String>,
)>;

fn replay(engine: &Engine) -> (StepTrace, SequenceStats) {
    let jobs = workload();
    let mut seq = engine
        .open_sequence(Arc::clone(&jobs[0].matrix), SequenceConfig::default())
        .unwrap();
    let mut trace = Vec::new();
    for job in jobs {
        match seq.step(job) {
            Ok(step) => trace.push((
                step.plan,
                step.warm_start,
                Ok((
                    step.report.solve.converged(),
                    step.report.solve.iterations,
                    step.report.solve.solution,
                )),
            )),
            Err(e) => trace.push((PlanAction::Recompiled, WarmStart::Cold, Err(e.to_string()))),
        }
    }
    (trace, seq.stats())
}

/// The replay-stable subset of [`SequenceStats`] (everything except the
/// wall-clock timing fields).
fn stat_counts(s: &SequenceStats) -> (u64, u64, u64, u64, u64, u64) {
    (
        s.steps,
        s.plans_reused,
        s.plans_patched,
        s.plans_recompiled,
        s.warm_starts_used,
        s.warm_starts_rejected,
    )
}

fn assert_traces_identical(a: &StepTrace, b: &StepTrace, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: step count");
    for (i, (sa, sb)) in a.iter().zip(b).enumerate() {
        assert_eq!(sa.0, sb.0, "{what}: step {i} plan action");
        assert_eq!(sa.1, sb.1, "{what}: step {i} warm-start verdict");
        match (&sa.2, &sb.2) {
            (Ok((ca, ia, xa)), Ok((cb, ib, xb))) => {
                assert_eq!(ca, cb, "{what}: step {i} convergence verdict");
                assert_eq!(ia, ib, "{what}: step {i} iteration count");
                assert_eq!(xa.len(), xb.len(), "{what}: step {i} solution length");
                for (r, (va, vb)) in xa.iter().zip(xb).enumerate() {
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "{what}: step {i} row {r} solution bits"
                    );
                }
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{what}: step {i} error"),
            _ => panic!("{what}: step {i} outcome kind differs between replays"),
        }
    }
}

#[test]
fn replayed_sequence_is_bitwise_identical() {
    let (first, s1) = replay(&Engine::with_workers(acamar(), 4));
    let (second, s2) = replay(&Engine::with_workers(acamar(), 4));
    assert_traces_identical(&first, &second, "replay");
    assert_eq!(stat_counts(&s1), stat_counts(&s2), "sequence stats differ");
    // The workload exercises every plan path...
    assert!(s1.plans_reused >= 5, "stats: {s1:?}");
    assert_eq!(s1.plans_patched, 2, "stats: {s1:?}");
    assert_eq!(s1.plans_recompiled, 1, "stats: {s1:?}");
    // ...and warm starts engaged on the quiet steps.
    assert!(s1.warm_starts_used >= 4, "stats: {s1:?}");
}

#[test]
fn worker_count_does_not_change_the_sequence() {
    let (one, _) = replay(&Engine::with_workers(acamar(), 1));
    let (eight, _) = replay(&Engine::with_workers(acamar(), 8));
    assert_traces_identical(&one, &eight, "1 vs 8 workers");
}

/// Chaos replay: the same seeded fault plan over the same sequence twice
/// must produce identical verdicts and bitwise solutions — warm-start
/// rejections triggered by fault-perturbed residuals fall back to the
/// deterministic cold start, never to divergent state.
#[cfg(feature = "fault-injection")]
#[test]
fn chaos_sequence_replay_is_deterministic() {
    use acamar::engine::ResilienceConfig;
    use acamar::faultline::{FaultInjector, FaultPlan};

    let run = || {
        let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(0xACA3, 0.25)));
        let engine = Engine::with_workers(acamar(), 4)
            .with_resilience(ResilienceConfig::hardened())
            .with_fault_injection(Arc::clone(&injector));
        let (trace, stats) = replay(&engine);
        (trace, stats, injector.injected())
    };
    let (t1, s1, i1) = run();
    let (t2, s2, i2) = run();
    assert_eq!(i1, i2, "injected fault counts differ between chaos replays");
    assert_traces_identical(&t1, &t2, "chaos replay");
    assert_eq!(
        stat_counts(&s1),
        stat_counts(&s2),
        "sequence stats differ under chaos replay"
    );
}
