//! Property test for the level-scheduled SpTRSV kernel's determinism
//! contract (DESIGN §17): at any worker count, the Deterministic-tier
//! `execute` must be **bitwise identical** to serial forward
//! substitution — same schedule, same per-row accumulation order, only
//! the level-internal work split differs.
//!
//! Runs 64 seeded random lower-triangular patterns (sizes 4..100,
//! densities 5%..40%) at 1, 2, and 8 workers; each failure message
//! carries the seed, so any counterexample reproduces exactly.

use acamar::sparse::rng::DetRng;
use acamar::sparse::{CompiledSptrsv, CooMatrix, CsrMatrix};

/// Number of random lower-triangular patterns to try.
const CASES: u64 = 64;

/// Random sparse lower-triangular matrix with a well-conditioned
/// diagonal; size and density are drawn from the seed.
fn random_lower(rng: &mut DetRng) -> CsrMatrix<f64> {
    let n = rng.gen_range(4..100usize);
    let density = 0.05 + rng.gen_f64() * 0.35;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for j in 0..i {
            if rng.gen_bool(density) {
                coo.push(i, j, rng.gen_f64() * 2.0 - 1.0).unwrap();
            }
        }
        coo.push(i, i, 2.0 + rng.gen_f64()).unwrap();
    }
    coo.to_csr()
}

#[test]
fn level_scheduled_sptrsv_is_bitwise_identical_to_serial_at_any_worker_count() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x5197_0000 + seed);
        let l = random_lower(&mut rng);
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 4.0 - 2.0).collect();

        let plan = CompiledSptrsv::compile_lower(&l)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        let mut reference = vec![0.0; n];
        plan.solve_serial(&l, &b, &mut reference)
            .unwrap_or_else(|e| panic!("seed {seed}: serial solve failed: {e}"));

        // The reference must actually solve L x = b before it can serve
        // as the bitwise oracle.
        let mut back = vec![0.0; n];
        l.mul_vec_into(&reference, &mut back).unwrap();
        for (i, (bi, ri)) in b.iter().zip(&back).enumerate() {
            assert!(
                (bi - ri).abs() < 1e-9 * (1.0 + bi.abs()),
                "seed {seed}: serial reference residual at row {i}: {bi} vs {ri}"
            );
        }

        let reference_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        let mut scratch = vec![0.0; plan.max_level_width()];
        for workers in [1usize, 2, 8] {
            let mut x = vec![0.0; n];
            plan.execute(&l, &b, &mut x, workers, &mut scratch)
                .unwrap_or_else(|e| panic!("seed {seed} workers {workers}: execute failed: {e}"));
            let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits,
                reference_bits,
                "seed {seed}: level-scheduled solve at {workers} workers diverged \
                 from serial substitution (n={n}, levels={})",
                plan.level_count()
            );
        }
    }
}
