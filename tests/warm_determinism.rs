//! Warm-path determinism: pooled workspaces and the persistent worker
//! pool must be invisible in the numbers.
//!
//! A "cold" batch (fresh engine, empty plan cache, empty buffer pools)
//! and a "warm" batch (same engine re-used after previous solves, so
//! every scratch buffer comes from the pool and every plan from the
//! cache) must produce bitwise-identical solutions at any worker count —
//! reuse may only change *where* bytes live, never what they are.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{BatchReport, Engine, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::{generate, CsrMatrix};
use std::sync::Arc;

fn acamar() -> Acamar {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    Acamar::new(FabricSpec::alveo_u55c(), cfg)
}

fn systems() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(generate::poisson2d::<f64>(11, 11)),
        Arc::new(generate::convection_diffusion_2d::<f64>(9, 10, 1.5)),
        Arc::new(generate::poisson1d::<f64>(120)),
    ]
}

fn job_mix(systems: &[Arc<CsrMatrix<f64>>], jobs: usize) -> Vec<SolveJob<f64>> {
    (0..jobs)
        .map(|k| {
            let a = &systems[k % systems.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 0.5 + ((i * 7 + k) % 23) as f64 * 0.04)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect()
}

fn assert_reports_bitwise_equal(a: &BatchReport<f64>, b: &BatchReport<f64>, what: &str) {
    assert_eq!(a.results.len(), b.results.len(), "{what}: job count");
    for (i, (ra, rb)) in a.results.iter().zip(&b.results).enumerate() {
        let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
        assert_eq!(
            ra.solve.solution, rb.solve.solution,
            "{what}: job {i} solution differs"
        );
        assert_eq!(ra.solve.iterations, rb.solve.iterations, "{what}: job {i}");
        assert_eq!(ra.attempts.len(), rb.attempts.len(), "{what}: job {i}");
    }
    assert_eq!(a.attempts_by_solver, b.attempts_by_solver, "{what}");
    assert_eq!(a.converged, b.converged, "{what}");
}

/// Cold batch vs. the third batch on the same engine (buffer pools and
/// plan cache fully warm), at 1, 4, and 8 workers — all six reports must
/// agree bitwise.
#[test]
fn warm_and_cold_batches_are_bitwise_identical_at_any_worker_count() {
    let systems = systems();
    let jobs = job_mix(&systems, 24);

    let mut reports: Vec<(usize, BatchReport<f64>, BatchReport<f64>)> = Vec::new();
    for workers in [1usize, 4, 8] {
        let engine = Engine::with_workers(acamar(), workers);
        let cold = engine.solve_jobs(jobs.clone());
        let _second = engine.solve_jobs(jobs.clone());
        let warm = engine.solve_jobs(jobs.clone());
        assert!(cold.all_converged(), "{workers} workers: cold batch");
        assert!(warm.all_converged(), "{workers} workers: warm batch");
        reports.push((workers, cold, warm));
    }

    for (workers, cold, warm) in &reports {
        assert_reports_bitwise_equal(cold, warm, &format!("warm vs cold at {workers} workers"));
    }
    // And across worker counts: every report agrees with the 1-worker cold run.
    let reference = &reports[0].1;
    for (workers, cold, _) in &reports[1..] {
        assert_reports_bitwise_equal(reference, cold, &format!("1 vs {workers} workers"));
    }
}

/// `solve_one` reuses the engine's cached solo workspace; repeated calls
/// must reproduce the first result bitwise.
#[test]
fn repeated_solve_one_is_bitwise_stable() {
    let a = generate::poisson2d::<f64>(13, 13);
    let b: Vec<f64> = (0..a.nrows())
        .map(|i| 1.0 + (i % 11) as f64 * 0.1)
        .collect();
    let engine = Engine::new(acamar());
    let first = engine.solve_one(&a, &b).unwrap();
    for _ in 0..3 {
        let again = engine.solve_one(&a, &b).unwrap();
        assert_eq!(first.solve.solution, again.solve.solution);
        assert_eq!(first.solve.iterations, again.solve.iterations);
    }
}

/// Fault-injection smoke: chaos replay is unchanged by workspace reuse —
/// the same seeded fault plan on a cold and a warm engine yields the
/// same ledger and the same per-job outcomes.
#[cfg(feature = "fault-injection")]
#[test]
fn chaos_replay_is_unchanged_by_warm_workspaces() {
    use acamar::engine::ResilienceConfig;
    use acamar::faultline::{FaultInjector, FaultPlan};

    let systems = systems();
    let jobs = job_mix(&systems, 18);

    let run = |warmed: bool| {
        let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(0xACA3, 0.25)));
        let engine = Engine::with_workers(acamar(), 4)
            .with_resilience(ResilienceConfig::hardened())
            .with_fault_injection(Arc::clone(&injector));
        if warmed {
            // The injector sits on a separate clean engine's output path
            // here: a fault-free pre-batch fills this engine's plan cache
            // and buffer pools without consuming any injection decisions
            // (those are pure functions of (seed, category, job, site),
            // not of engine state).
            let clean = Engine::with_workers(acamar(), 4);
            let _ = clean.solve_jobs(jobs.clone());
        }
        let report = engine.solve_jobs(jobs.clone());
        let injected = injector.injected();
        (report, injected)
    };

    let (cold_report, cold_injected) = run(false);
    let (warm_report, warm_injected) = run(true);

    assert_eq!(
        cold_injected, warm_injected,
        "injected fault counts changed under workspace reuse"
    );
    assert_eq!(cold_report.results.len(), warm_report.results.len());
    for (i, (c, w)) in cold_report
        .results
        .iter()
        .zip(&warm_report.results)
        .enumerate()
    {
        match (c, w) {
            (Ok(c), Ok(w)) => {
                assert_eq!(c.solve.solution, w.solve.solution, "job {i}");
                assert_eq!(c.attempts.len(), w.attempts.len(), "job {i}");
            }
            (Err(_), Err(_)) => {}
            _ => panic!("job {i}: outcome kind differs between cold and warm chaos runs"),
        }
    }
    assert_eq!(
        cold_report.robustness.tallies, warm_report.robustness.tallies,
        "fault reconciliation changed under workspace reuse"
    );
}
