//! Chaos suite: the deterministic fault-injection harness driving every
//! hardening path of the batch engine at once.
//!
//! Gated behind the `fault-injection` cargo feature:
//! `cargo test --features fault-injection --test chaos_engine`.
//!
//! Everything here is seeded — each test replays the exact same fault
//! sequence on every run, whatever the worker interleaving, because each
//! injection decision is a pure function of `(seed, category, job, site)`.

#![cfg(feature = "fault-injection")]

use acamar::core::{Acamar, AcamarConfig, RescuePolicy};
use acamar::engine::{Engine, ResilienceConfig, SolveError, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::faultline::{FaultCategory, FaultInjector, FaultPlan};
use acamar::solvers::{ConvergenceCriteria, DivergenceReason, Outcome};
use acamar::sparse::{generate, CsrMatrix, SparseError};
use std::sync::Arc;

fn acamar() -> Acamar {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    Acamar::new(FabricSpec::alveo_u55c(), cfg)
}

fn systems() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(generate::poisson2d::<f64>(10, 10)),
        Arc::new(generate::poisson2d::<f64>(12, 8)),
        Arc::new(generate::convection_diffusion_2d::<f64>(9, 9, 2.0)),
    ]
}

fn job_mix(systems: &[Arc<CsrMatrix<f64>>], jobs: usize) -> Vec<SolveJob<f64>> {
    (0..jobs)
        .map(|k| {
            let a = &systems[k % systems.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 3 * k) % 17) as f64 * 0.05)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect()
}

/// The acceptance scenario: 64 jobs, every fault category at a 25% rate,
/// full hardening. The batch must complete with a result in every slot,
/// zero uncontained panics, and a ledger in which every injected fault is
/// accounted for (`detected + recovered + exhausted == injected`, per
/// category).
#[test]
fn sixty_four_job_chaos_batch_completes_and_accounts_every_fault() {
    let plan = FaultPlan::uniform(0xACA3, 0.25);
    let injector = Arc::new(FaultInjector::new(plan));
    let engine = Engine::with_workers(acamar(), 4)
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(Arc::clone(&injector));

    let batch = engine.solve_jobs(job_mix(&systems(), 64));

    assert_eq!(batch.jobs(), 64, "a result in every slot");
    let r = &batch.robustness;
    assert!(r.accounted(), "every fault accounted: {r:?}");
    assert_eq!(r.injected_total(), injector.injected_total());
    // Every *engine* seam must fire; the service seams (dispatcher
    // panic/stall, queue drop) live behind admission and are exercised
    // by tests/service_failover.rs instead.
    for category in FaultCategory::ENGINE {
        let t = r.tallies[category.index()];
        assert!(
            t.injected > 0,
            "seed 0xACA3 must exercise {category} (got none)"
        );
    }
    // Uncontained panics would have aborted the test; the contained ones
    // are all attributed to the worker-disruption seam.
    assert!(r.panics_caught > 0, "seed must inject at least one panic");
    // Failures are allowed under 25% chaos, but the engine must keep the
    // majority of the batch alive, and every failure must be typed.
    assert!(
        batch.converged > 32,
        "majority survives, got {}",
        batch.converged
    );
    assert_eq!(batch.converged + r.exhausted_jobs.len(), 64);
    assert!(r.rescued_jobs() > 0, "the ladder must see action");
    // Replaying the identical plan reproduces the identical ledger.
    let replay_injector = Arc::new(FaultInjector::new(FaultPlan::uniform(0xACA3, 0.25)));
    let replay = Engine::with_workers(acamar(), 2)
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(Arc::clone(&replay_injector))
        .solve_jobs(job_mix(&systems(), 64));
    assert_eq!(replay.robustness.tallies, r.tallies);
    assert_eq!(replay.robustness.exhausted_jobs, r.exhausted_jobs);
}

/// A fault-free engine (no injector installed) must reproduce the plain
/// accelerator byte for byte: the hardening hooks are inert until armed.
#[test]
fn fault_free_engine_is_byte_identical_to_the_plain_accelerator() {
    let systems = systems();
    let jobs = job_mix(&systems, 12);
    let engine = Engine::with_workers(acamar(), 4);
    let batch = engine.solve_jobs(jobs.clone());
    let reference = acamar();
    for (job, result) in jobs.iter().zip(&batch.results) {
        let got = result.as_ref().unwrap();
        let want = reference.run(&job.matrix, &job.rhs).unwrap();
        assert_eq!(got.solve.solution, want.solve.solution);
        assert_eq!(got.solve.iterations, want.solve.iterations);
        assert_eq!(got.stats.cycles.total(), want.stats.cycles.total());
        assert_eq!(got.attempts.len(), want.attempts.len());
    }
    assert_eq!(batch.robustness.injected_total(), 0);
    assert_eq!(batch.robustness.panics_caught, 0);
}

/// Poisoned right-hand sides (NaN/Inf written at intake) are caught by
/// input validation as typed, non-retryable errors naming the container.
#[test]
fn poisoned_rhs_is_rejected_as_a_typed_non_finite_error() {
    let plan = FaultPlan::new(5).with_rate(FaultCategory::RhsPoison, 1.0);
    let injector = Arc::new(FaultInjector::new(plan));
    let engine = Engine::with_workers(acamar(), 2)
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(injector);
    let batch = engine.solve_jobs(job_mix(&systems(), 6));
    for result in &batch.results {
        match result {
            Err(SolveError::Invalid(SparseError::NonFiniteValue { what, .. })) => {
                assert_eq!(*what, "right-hand side");
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }
    // Deterministic rejections never climb the ladder.
    assert_eq!(batch.robustness.rescued_jobs(), 0);
    let t = batch.robustness.tallies[FaultCategory::RhsPoison.index()];
    assert_eq!((t.injected, t.exhausted), (6, 6));
    assert!(batch.robustness.accounted());
}

/// A stuck exponent bit in the SpMV datapath makes the residual explode;
/// the Monitor classifies it (`NonFinite` or `ResidualGrowth`) and the
/// Solver Modifier switches solvers — the paper's robustness loop,
/// triggered by an injected hardware fault.
#[test]
fn stuck_spmv_bit_is_classified_as_divergence_and_switches_solvers() {
    let plan = FaultPlan::new(9).with_rate(FaultCategory::SpmvBitFlip, 1.0);
    let injector = Arc::new(FaultInjector::new(plan));
    // No rescue ladder: observe the in-run defenses on their own.
    let engine = Engine::with_workers(acamar(), 1).with_fault_injection(injector);
    let a = generate::poisson2d::<f64>(10, 10);
    let report = match engine.solve_one(&a, &vec![1.0; 100]) {
        Ok(report) => report,
        Err(e) => panic!("a corrupted datapath still yields a report: {e}"),
    };
    // Rate 1.0 poisons every attempt, so the run cannot converge — but
    // every attempt must end in a *loud* divergence, never a silent wrong
    // answer, and the Modifier must have switched at least once.
    assert!(!report.converged());
    assert!(report.attempts.len() >= 2, "solver switch happened");
    for at in &report.attempts {
        match at.outcome {
            Outcome::Diverged(
                DivergenceReason::NonFinite
                | DivergenceReason::ResidualGrowth
                | DivergenceReason::Breakdown(_),
            ) => {}
            other => panic!("stuck bit must diverge loudly, got {other:?}"),
        }
    }
}

/// With a moderate bit-flip rate the rescue ladder's retry (a fresh
/// attempt re-rolls the stuck bit) recovers jobs the primary run lost.
#[test]
fn rescue_ladder_recovers_bit_flipped_jobs() {
    let plan = FaultPlan::new(21).with_rate(FaultCategory::SpmvBitFlip, 0.5);
    let injector = Arc::new(FaultInjector::new(plan));
    let engine = Engine::with_workers(acamar(), 2)
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(Arc::clone(&injector));
    let batch = engine.solve_jobs(job_mix(&systems(), 16));
    let t = batch.robustness.tallies[FaultCategory::SpmvBitFlip.index()];
    assert!(t.injected > 0);
    assert!(
        t.recovered > 0,
        "some flipped job must converge via rescue: {t:?}"
    );
    assert!(batch.robustness.accounted());
    assert_eq!(
        batch.converged + batch.robustness.exhausted_jobs.len(),
        batch.jobs()
    );
}

/// Aborted partial reconfigurations degrade the fabric to the static
/// max-unroll kernel: the job still converges, and the wasted swap plus
/// the oversized-unroll segments are charged to the run's stats.
#[test]
fn reconfig_aborts_degrade_to_static_and_still_converge() {
    let plan = FaultPlan::new(3).with_rate(FaultCategory::ReconfigAbort, 1.0);
    let injector = Arc::new(FaultInjector::new(plan));
    let engine = Engine::with_workers(acamar(), 1).with_fault_injection(Arc::clone(&injector));
    // The convection-diffusion pattern has a varied row-length profile,
    // so its plan actually schedules mid-run unroll swaps to abort.
    let a = generate::convection_diffusion_2d::<f64>(16, 16, 2.0);
    let report = engine.solve_one(&a, &vec![1.0; 256]).unwrap();
    assert!(report.converged(), "degraded fabric is still correct");
    assert!(report.stats.degraded_to_static);
    assert!(report.stats.reconfig_aborts >= 1);
    assert!(
        report.stats.lost_area_cycles > 0,
        "running off-plan unrolls must be charged as lost area"
    );
    let t = injector.injected();
    assert!(t[FaultCategory::ReconfigAbort.index()] >= 1);
}

/// Worker panics are contained per job: with the ladder enabled the
/// retry rung re-runs the job, and seeds where a later roll stays quiet
/// recover it.
#[test]
fn injected_worker_panics_are_contained_and_retried() {
    let plan = FaultPlan::new(17).with_rate(FaultCategory::WorkerDisruption, 0.6);
    let injector = Arc::new(FaultInjector::new(plan));
    let engine = Engine::with_workers(acamar(), 4)
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(Arc::clone(&injector));
    let batch = engine.solve_jobs(job_mix(&systems(), 16));
    assert_eq!(batch.jobs(), 16);
    assert!(batch.robustness.panics_caught > 0, "panics were injected");
    assert!(batch.robustness.accounted());
    // The ladder turns panicked primaries into recoveries.
    let t = batch.robustness.tallies[FaultCategory::WorkerDisruption.index()];
    assert!(t.injected > 0);
    assert!(
        batch.converged + batch.robustness.exhausted_jobs.len() == 16,
        "every job lands in exactly one bucket"
    );
}

/// Under total chaos a tight wall-clock deadline still bounds every job:
/// work either finishes or fails fast with a typed deadline error.
#[test]
fn deadlines_bound_jobs_even_under_chaos() {
    let plan = FaultPlan::uniform(99, 0.5);
    let injector = Arc::new(FaultInjector::new(plan));
    let resilience = ResilienceConfig {
        rescue: Some(RescuePolicy::default()),
        ..ResilienceConfig::default()
    }
    .with_deadline(std::time::Duration::from_millis(200))
    .with_iteration_budget(20_000);
    let engine = Engine::with_workers(acamar(), 4)
        .with_resilience(resilience)
        .with_fault_injection(injector);
    let batch = engine.solve_jobs(job_mix(&systems(), 24));
    assert_eq!(batch.jobs(), 24);
    assert!(batch.robustness.accounted());
    for result in &batch.results {
        if let Err(SolveError::DeadlineExceeded { limit_ms, .. }) = result {
            assert_eq!(*limit_ms, 200);
        }
    }
}

/// The Gmres last resort can be forced through the ladder: with every
/// other rung exhausted by a starved budget, the merged report shows the
/// climb in order.
#[test]
fn ladder_climb_is_visible_in_the_merged_report() {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(4));
    let engine = Engine::with_workers(Acamar::new(FabricSpec::alveo_u55c(), cfg), 1)
        .with_resilience(ResilienceConfig {
            rescue: Some(RescuePolicy {
                min_iterations: 2000,
                ..RescuePolicy::default()
            }),
            ..ResilienceConfig::default()
        });
    let a = generate::poisson2d::<f64>(10, 10);
    let report = engine.solve_one(&a, &vec![1.0; 100]).unwrap();
    assert!(report.converged());
    assert!(
        report.attempts.len() >= 2,
        "the starved primary attempts precede the rescue in the report"
    );
    assert!(!report.attempts[0].outcome.converged());
    assert!(report.attempts.last().unwrap().outcome.converged());
}
