//! Routing property suite for the serving layer.
//!
//! Two claims, both deterministic:
//!
//! 1. **Affinity routing is a pure function of the fingerprint** — the
//!    same sparsity pattern maps to the same shard on every call, in
//!    every service instance ("across restarts": `shard_for` keeps no
//!    process state), at every shard count.
//! 2. **Affinity beats round-robin on cache hits** — on a seeded
//!    256-job mixed-pattern stream, affinity routing analyzes each
//!    pattern on exactly one shard (total misses = distinct patterns),
//!    while round-robin smears each pattern across shards (one miss per
//!    `(pattern, shard)` pair it touches), so affinity's total per-shard
//!    hit count is strictly higher. Both counts are timing-independent:
//!    the plan cache guarantees `misses == distinct patterns seen` per
//!    shard even under contention.
//!
//! The stream's patterns are chosen by a seeded [`DetRng`], *not* by
//! cycling — a cycled stream whose period divides the shard count would
//! degenerate round-robin into accidental affinity.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::PatternFingerprint;
use acamar::fabric::FabricSpec;
use acamar::service::{shard_for, RoutingPolicy, Service, ServiceConfig, ServiceRequest};
use acamar::sparse::rng::DetRng;
use acamar::sparse::{generate, CsrMatrix};
use std::sync::Arc;

fn acamar() -> Acamar {
    Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
}

/// Twelve structurally distinct small systems (every one solves fast;
/// what matters here is that their fingerprints differ).
fn patterns() -> Vec<Arc<CsrMatrix<f64>>> {
    let mut out: Vec<Arc<CsrMatrix<f64>>> = Vec::new();
    for k in 0..6 {
        out.push(Arc::new(generate::poisson2d::<f64>(6 + k, 6)));
    }
    for k in 0..3 {
        out.push(Arc::new(generate::poisson1d::<f64>(40 + 7 * k)));
    }
    for k in 0..3u64 {
        out.push(Arc::new(generate::diagonally_dominant::<f64>(
            48 + 4 * k as usize,
            generate::RowDistribution::Constant(4),
            4.0,
            900 + k,
        )));
    }
    let fps: std::collections::HashSet<PatternFingerprint> =
        out.iter().map(|a| PatternFingerprint::of(a)).collect();
    assert_eq!(
        fps.len(),
        out.len(),
        "patterns must be structurally distinct"
    );
    out
}

/// The seeded 256-request stream: `(pattern index, rhs scale)` pairs.
fn stream(n_patterns: usize) -> Vec<(usize, f64)> {
    let mut rng = DetRng::seed_from_u64(0x5eed_5e88);
    (0..256)
        .map(|_| {
            (
                (rng.next_u64() % n_patterns as u64) as usize,
                1.0 + rng.gen_f64(),
            )
        })
        .collect()
}

#[test]
fn affinity_is_a_pure_function_of_the_fingerprint() {
    let pats = patterns();
    for shards in [1usize, 2, 4] {
        let routes: Vec<usize> = pats
            .iter()
            .map(|a| shard_for(&PatternFingerprint::of(a), shards))
            .collect();
        for (a, &r) in pats.iter().zip(&routes) {
            assert!(r < shards);
            // Pure in the fingerprint: recomputing never disagrees.
            for _ in 0..3 {
                assert_eq!(shard_for(&PatternFingerprint::of(a), shards), r);
            }
        }
        // "Across restarts": a fresh service instance (fresh caches,
        // fresh threads) routes every pattern identically.
        let cfg = ServiceConfig::default()
            .with_shards(shards)
            .with_routing(RoutingPolicy::Affinity);
        let s1 = Service::<f64>::new(acamar(), cfg.clone());
        let s2 = Service::<f64>::new(acamar(), cfg);
        for (a, &r) in pats.iter().zip(&routes) {
            assert_eq!(s1.route(a), r, "service 1 disagrees with shard_for");
            assert_eq!(s2.route(a), r, "restarted service disagrees");
        }
    }
}

#[test]
fn one_shard_routes_everything_to_shard_zero() {
    for a in patterns() {
        assert_eq!(shard_for(&PatternFingerprint::of(&a), 1), 0);
    }
}

/// Runs the seeded stream through a service and returns
/// `(total hits, total misses, per-shard job counts)` summed over shards.
fn run_stream(service: &Service<f64>, pats: &[Arc<CsrMatrix<f64>>]) -> (u64, u64, Vec<u64>) {
    let tickets: Vec<_> = stream(pats.len())
        .into_iter()
        .map(|(p, scale)| {
            let a = Arc::clone(&pats[p]);
            let rhs = vec![scale; a.nrows()];
            service
                .submit(ServiceRequest::new(a, rhs))
                .expect("stream fits the default queue bound")
        })
        .collect();
    for t in tickets {
        t.wait().expect("healthy systems solve");
    }
    let mut hits = 0;
    let mut misses = 0;
    let mut jobs = Vec::new();
    for s in 0..service.shards() {
        let c = service.engine(s).counters();
        hits += c.cache.hits;
        misses += c.cache.misses;
        jobs.push(c.jobs_completed);
    }
    (hits, misses, jobs)
}

#[test]
fn affinity_yields_strictly_more_cache_hits_than_round_robin() {
    let pats = patterns();
    let k = pats.len() as u64;
    for shards in [2usize, 4] {
        let affinity = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(shards)
                .with_queue_capacity(512)
                .with_routing(RoutingPolicy::Affinity),
        );
        let (hits_aff, misses_aff, _) = run_stream(&affinity, &pats);
        // Affinity analyzes each pattern on exactly one shard.
        assert_eq!(misses_aff, k, "{shards} shards: one miss per pattern");
        assert_eq!(hits_aff, 256 - k);
        // Each pattern is warm on exactly one shard.
        for a in &pats {
            let warm = (0..shards).filter(|&s| affinity.is_warm(s, a)).count();
            assert_eq!(warm, 1, "{shards} shards: pattern warm on {warm} shards");
        }

        let rr = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(shards)
                .with_queue_capacity(512)
                .with_routing(RoutingPolicy::RoundRobin),
        );
        let (hits_rr, misses_rr, _) = run_stream(&rr, &pats);
        assert_eq!(hits_rr + misses_rr, 256);
        assert!(
            misses_rr > k,
            "{shards} shards: round-robin should smear at least one pattern \
             across shards (misses {misses_rr} vs {k} patterns)"
        );
        assert!(
            hits_aff > hits_rr,
            "{shards} shards: affinity hits {hits_aff} must strictly beat \
             round-robin hits {hits_rr}"
        );
    }
}

#[test]
fn at_one_shard_routing_policy_is_irrelevant_to_hits() {
    let pats = patterns();
    let k = pats.len() as u64;
    for routing in [RoutingPolicy::Affinity, RoutingPolicy::RoundRobin] {
        let service = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(1)
                .with_queue_capacity(512)
                .with_routing(routing),
        );
        let (hits, misses, jobs) = run_stream(&service, &pats);
        assert_eq!(misses, k);
        assert_eq!(hits, 256 - k);
        assert_eq!(jobs, vec![256]);
    }
}
