//! Two-tier determinism policy: accuracy and scheduling-independence.
//!
//! The `Fast` tier forfeits the bitwise contract, not correctness. These
//! tests pin down what it still promises:
//!
//! - **Accuracy**: on well-conditioned inputs, `Fast` SpMV agrees with
//!   the `Deterministic` kernel to a few ULP per element, over hundreds
//!   of seeded random sparsity patterns spanning every band kind.
//! - **Scheduling-independence**: within a tier, the convergence triple
//!   (iterations / final residual / verdict) does not depend on how many
//!   engine workers ran the batch — reassociation is a *kernel* choice,
//!   fixed at plan compile, not a scheduling artifact.
//! - **Verdict equivalence**: both tiers agree on converged/diverged.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::rng::DetRng;
use acamar::sparse::{generate, CompiledSpmv, CooMatrix, CsrMatrix, DeterminismPolicy};
use std::sync::Arc;

/// Number of seeded sparsity patterns for the ULP property.
const PATTERNS: u64 = 256;

/// Maximum ULP distance tolerated between the two tiers' SpMV results.
const MAX_ULP: u64 = 4;

/// Distance between two floats in units in the last place, via the
/// monotonic integer mapping of the IEEE-754 bit patterns (negative
/// floats map below positives, so the distance is order-correct across
/// zero).
fn ulp_distance(a: f64, b: f64) -> u64 {
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

/// One random well-conditioned system: same-sign entries (no
/// catastrophic cancellation, so reassociated sums stay within a few
/// ULP of the serial order) over a sparsity pattern that mixes uniform
/// rows (compiling to `Fixed`/`Ell` bands), ragged rows (`Unrolled` /
/// `Scalar`), contiguous column runs (the fast tier's `dot_fast` path),
/// and occasional near-dense rows (`DenseRow`).
fn random_case(rng: &mut DetRng) -> (CsrMatrix<f64>, Vec<f64>) {
    let n = rng.gen_range(4..96usize);
    let uniform_width = rng.gen_range(1..9usize).min(n);
    let uniform = rng.gen_range(0.0..1.0) < 0.5;
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let len = if uniform {
            uniform_width
        } else if rng.gen_range(0.0..1.0) < 0.05 {
            n - rng.gen_range(0..2usize).min(n - 1)
        } else {
            rng.gen_range(0..24usize).min(n)
        };
        let contiguous = rng.gen_range(0.0..1.0) < 0.3;
        let start = rng.gen_range(0..n);
        for k in 0..len {
            let c = if contiguous {
                (start + k) % n
            } else {
                rng.gen_range(0..n)
            };
            coo.push(r, c, rng.gen_range(0.5..1.5)).unwrap();
        }
    }
    let x = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
    (coo.to_csr(), x)
}

#[test]
fn fast_and_deterministic_spmv_agree_to_four_ulp() {
    for case in 0..PATTERNS {
        let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case + 1);
        let mut rng = DetRng::seed_from_u64(seed);
        let (a, x) = random_case(&mut rng);
        let plan = CompiledSpmv::compile_default(&a);
        let n = a.nrows();
        let mut y_det = vec![0.0; n];
        let mut y_fast = vec![0.0; n];
        plan.execute(&a, &x, &mut y_det).unwrap();
        plan.execute_fast(&a, &x, &mut y_fast).unwrap();
        for r in 0..n {
            let d = ulp_distance(y_det[r], y_fast[r]);
            assert!(
                d <= MAX_ULP,
                "seed {seed:#x}: row {r} differs by {d} ULP \
                 (det {:e}, fast {:e}, n {n})",
                y_det[r],
                y_fast[r],
            );
        }
    }
}

#[test]
fn fused_spmv_dot_tiers_agree_on_well_conditioned_inputs() {
    for case in 0..PATTERNS / 4 {
        let seed = 0xD1B5_4A32_D192_ED03u64.wrapping_mul(case + 1);
        let mut rng = DetRng::seed_from_u64(seed);
        let (a, x) = random_case(&mut rng);
        let plan = CompiledSpmv::compile_default(&a);
        let n = a.nrows();
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
        let mut y_det = vec![0.0; n];
        let mut y_fast = vec![0.0; n];
        let d_det = plan.execute_dot(&a, &x, &mut y_det, &z).unwrap();
        let d_fast = plan.execute_dot_fast(&a, &x, &mut y_fast, &z).unwrap();
        // The fused dot reassociates over up-to-n same-sign products on
        // top of the per-element SpMV tolerance; a relative bound is the
        // right shape for it.
        let rel = (d_det - d_fast).abs() / d_det.abs().max(f64::MIN_POSITIVE);
        assert!(
            rel <= 1e-12,
            "seed {seed:#x}: fused dot differs by {rel:e} (det {d_det:e}, fast {d_fast:e})"
        );
    }
}

fn acamar() -> Acamar {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    Acamar::new(FabricSpec::alveo_u55c(), cfg)
}

/// Convergence triple (iterations, final residual, verdict) of every job
/// in a batch solved under `policy` with `workers` engine workers.
fn triples(
    systems: &[Arc<CsrMatrix<f64>>],
    workers: usize,
    policy: DeterminismPolicy,
) -> Vec<(usize, f64, bool)> {
    let engine = Engine::with_workers(acamar(), workers);
    let jobs: Vec<SolveJob<f64>> = systems
        .iter()
        .enumerate()
        .map(|(k, a)| {
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + (i + k) as f64 * 1e-3)
                .collect();
            SolveJob::new(Arc::clone(a), b).with_policy(policy)
        })
        .collect();
    let batch = engine.solve_jobs(jobs);
    batch
        .results
        .into_iter()
        .map(|r| {
            let rep = r.expect("solve succeeds");
            (
                rep.solve.iterations,
                rep.solve.final_residual(),
                rep.converged(),
            )
        })
        .collect()
}

#[test]
fn convergence_triple_is_worker_count_independent_in_both_tiers() {
    let systems = vec![
        Arc::new(generate::poisson2d::<f64>(12, 12)),
        Arc::new(generate::poisson2d::<f64>(13, 11)),
        Arc::new(generate::poisson1d::<f64>(144)),
        Arc::new(generate::poisson2d::<f64>(9, 16)),
    ];
    for policy in DeterminismPolicy::ALL {
        let baseline = triples(&systems, 1, policy);
        for workers in [2, 8] {
            let got = triples(&systems, workers, policy);
            assert_eq!(
                baseline, got,
                "{policy}: convergence triple changed between 1 and {workers} workers"
            );
        }
    }
    // Across tiers the bits may differ but the verdicts must not.
    let det = triples(&systems, 1, DeterminismPolicy::Deterministic);
    let fast = triples(&systems, 1, DeterminismPolicy::Fast);
    for (k, (d, f)) in det.iter().zip(&fast).enumerate() {
        assert_eq!(d.2, f.2, "job {k}: tiers disagree on the verdict");
    }
}
