//! Seeded property test for band patching: a `CompiledSpmv` patched from
//! a pattern delta must be **bitwise identical** to a from-scratch
//! compile of the evolved pattern — identical as a plan (same bands, same
//! slot packing) and identical in execution at 1, 2, and 8 threads.
//!
//! Patterns are drawn from every `RowDistribution` family (exercising
//! Fixed, ELL, unrolled-CSR, scalar, and dense-row bands), plans are
//! compiled both from the MSID schedule the fine-grained reconfiguration
//! unit actually produces and from hand-rolled hint tilings, and each
//! case drifts the pattern in a seeded handful of rows.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::sparse::generate::{self, RowDistribution};
use acamar::sparse::rng::DetRng;
use acamar::sparse::{BandHint, CompiledSpmv, CsrMatrix, PatternDelta};

/// Thread counts the patched/scratch agreement must hold under.
const THREADS: [usize; 3] = [1, 2, 8];

fn families(case: u64) -> RowDistribution {
    match case % 5 {
        0 => RowDistribution::Constant(3 + (case % 5) as usize),
        1 => RowDistribution::Uniform {
            min: 1,
            max: 9 + (case % 8) as usize,
        },
        2 => RowDistribution::Bimodal {
            low: 2,
            high: 24 + (case % 16) as usize,
            high_fraction: 0.1,
        },
        // Heavy rows above `DENSE_ROW_MIN_NNZ`, so dense-row bands appear.
        3 => RowDistribution::Bimodal {
            low: 2,
            high: 160,
            high_fraction: 0.05,
        },
        _ => RowDistribution::PowerLaw {
            min: 1,
            max: 60,
            exponent: 1.8,
        },
    }
}

/// Drops the leading entry of each listed row (rows with a single entry
/// are left alone), changing the sparsity pattern in exactly the touched
/// rows while keeping the CSR sorted and valid.
fn drop_leading_entries(a: &CsrMatrix<f64>, rows: &[usize]) -> CsrMatrix<f64> {
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (rc, rv) = a.row(i);
        let from = usize::from(rows.contains(&i) && rc.len() > 1);
        cols.extend_from_slice(&rc[from..]);
        vals.extend_from_slice(&rv[from..]);
        row_ptr.push(cols.len());
    }
    CsrMatrix::try_from_parts(a.nrows(), a.ncols(), row_ptr, cols, vals).unwrap()
}

/// Band-parallel execution with `threads` workers, each walking whole
/// bands into its slice of `y` — the same decomposition the software
/// kernels use.
fn parallel_execute(
    plan: &CompiledSpmv,
    a: &CsrMatrix<f64>,
    x: &[f64],
    threads: usize,
) -> Vec<f64> {
    let mut y = vec![0.0_f64; a.nrows()];
    let spans = plan.partition(threads);
    std::thread::scope(|s| {
        let mut rest = y.as_mut_slice();
        for span in spans {
            let rows = plan.span_rows(span.clone());
            let (head, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            s.spawn(move || plan.execute_span(span, a, x, head));
        }
    });
    y
}

fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: row {i} differs ({g:?} vs {w:?})"
        );
    }
}

/// Asserts `patched == scratch` as plans and as executors at every
/// thread count, against the generic CSR walk as ground truth.
fn assert_patch_equivalence(
    patched: &CompiledSpmv,
    scratch: &CompiledSpmv,
    a: &CsrMatrix<f64>,
    seed: u64,
    ctx: &str,
) {
    assert_eq!(patched, scratch, "{ctx}: plans differ structurally");
    assert!(patched.verify_pattern(a), "{ctx}: patched plan mismatch");
    let mut rng = DetRng::seed_from_u64(seed ^ 0x5EED);
    let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let expected = a.mul_vec(&x).unwrap();
    for threads in THREADS {
        let yp = parallel_execute(patched, a, &x, threads);
        let ys = parallel_execute(scratch, a, &x, threads);
        assert_bits_eq(
            &yp,
            &ys,
            &format!("{ctx} threads={threads} patched/scratch"),
        );
        assert_bits_eq(&yp, &expected, &format!("{ctx} threads={threads} vs csr"));
    }
}

#[test]
fn patched_plan_is_bitwise_identical_to_scratch_compile() {
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    for case in 0..30u64 {
        let seed = 0x9A7C_0000 + case;
        let n = 192 + (case as usize * 29) % 200;
        let a0 = generate::random_pattern::<f64>(n, families(case), seed);
        let dirty: Vec<usize> = (0..1 + (case as usize % 5))
            .map(|j| (j * 97 + case as usize * 13) % n)
            .collect();
        let a1 = drop_leading_entries(&a0, &dirty);
        let delta = PatternDelta::between(&a0, &a1).expect("same shape");
        if delta.is_empty() {
            continue; // every chosen row was single-entry
        }

        // Plans compiled from the MSID schedule's hints...
        let hints = acamar.analyze(&a0).plan.schedule.band_hints();
        let base = CompiledSpmv::compile(&a0, &hints).unwrap();
        let patched = base.patch(&a1, &hints, &delta).unwrap();
        let scratch = CompiledSpmv::compile(&a1, &hints).unwrap();
        assert_patch_equivalence(&patched, &scratch, &a1, seed, &format!("case {case} msid"));

        // ...and from a hand-rolled three-way tiling with its own unrolls.
        let thirds = [0..n / 3, n / 3..2 * n / 3, 2 * n / 3..n];
        let hints: Vec<BandHint> = thirds
            .into_iter()
            .zip([1usize, 4, 8])
            .map(|(rows, unroll)| BandHint { rows, unroll })
            .collect();
        let base = CompiledSpmv::compile(&a0, &hints).unwrap();
        let patched = base.patch(&a1, &hints, &delta).unwrap();
        let scratch = CompiledSpmv::compile(&a1, &hints).unwrap();
        assert_patch_equivalence(
            &patched,
            &scratch,
            &a1,
            seed,
            &format!("case {case} thirds"),
        );
    }
}

#[test]
fn chained_patches_track_a_drifting_pattern() {
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    for case in 0..8u64 {
        let seed = 0xD21F_0000 + case;
        let n = 200 + (case as usize * 31) % 150;
        let mut a = generate::random_pattern::<f64>(n, families(case), seed);
        let hints = acamar.analyze(&a).plan.schedule.band_hints();
        let mut plan = CompiledSpmv::compile(&a, &hints).unwrap();
        // Drift for several steps, patching the previous *patched* plan
        // each time: patches must compose without drifting off the
        // scratch compile.
        for step in 0..5usize {
            let dirty: Vec<usize> = (0..2)
                .map(|j| (j * 89 + step * 41 + case as usize * 7) % n)
                .collect();
            let next = drop_leading_entries(&a, &dirty);
            let delta = PatternDelta::between(&a, &next).expect("same shape");
            if delta.is_empty() {
                a = next;
                continue;
            }
            let patched = plan.patch(&next, &hints, &delta).unwrap();
            let scratch = CompiledSpmv::compile(&next, &hints).unwrap();
            assert_patch_equivalence(
                &patched,
                &scratch,
                &next,
                seed + step as u64,
                &format!("case {case} step {step}"),
            );
            plan = patched;
            a = next;
        }
    }
}
