//! Supervision, failover, and service-seam chaos suite.
//!
//! The serving layer's self-healing acceptance tests, gated like the
//! engine chaos suite behind `--features fault-injection`:
//!
//! - a 64-job batch with every service seam (dispatcher panic, dispatcher
//!   stall, queue drop) firing loses zero jobs and keeps the service
//!   ledger's `detected + recovered + exhausted == injected` invariant in
//!   every category;
//! - same-seed chaos runs emit identical normalized telemetry streams;
//! - a broken shard's traffic deterministically spills down the failover
//!   ranking, half-opens after the configured diversions, and heals on a
//!   successful probe;
//! - dropping a service mid-chaos still resolves every outstanding
//!   ticket.

#![cfg(feature = "fault-injection")]

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::PatternFingerprint;
use acamar::fabric::FabricSpec;
use acamar::faultline::{FaultCategory, FaultPlan};
use acamar::service::{
    shard_ranking, Service, ServiceConfig, ServiceError, ServiceRequest, ShardHealth,
};
use acamar::sparse::{generate, CsrMatrix};
use acamar::telemetry::{Counter, Event, RingRecorder};
use std::sync::Arc;
use std::time::Duration;

fn acamar() -> Acamar {
    Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
}

fn systems() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(generate::poisson2d::<f64>(10, 10)),
        Arc::new(generate::poisson2d::<f64>(12, 8)),
        Arc::new(generate::convection_diffusion_2d::<f64>(9, 9, 2.0)),
    ]
}

fn request(a: &Arc<CsrMatrix<f64>>, k: usize) -> ServiceRequest<f64> {
    let b: Vec<f64> = (0..a.nrows())
        .map(|i| 1.0 + ((i + 3 * k) % 17) as f64 * 0.05)
        .collect();
    ServiceRequest::new(Arc::clone(a), b)
}

/// Every service seam at a meaningful rate, engine seams quiet — this
/// suite is about the serving layer's own failure modes.
fn service_seam_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rate(FaultCategory::DispatcherPanic, 0.10)
        .with_rate(FaultCategory::DispatcherStall, 0.10)
        .with_rate(FaultCategory::QueueDrop, 0.15)
}

/// The acceptance scenario: 64 jobs through a chaos service with all
/// three service seams firing. Zero jobs lost — every ticket resolves,
/// and every resolution is either a converged solution or a typed,
/// budget-exhausted error — and the service ledger accounts for every
/// injected fault per category.
#[test]
fn sixty_four_job_service_chaos_batch_loses_nothing_and_accounts_every_fault() {
    let service = Service::<f64>::with_fault_plan(
        acamar(),
        ServiceConfig::default()
            .with_shards(2)
            .with_workers_per_shard(2)
            .with_queue_capacity(64)
            .with_retry_budget(2)
            .with_restart_backoff(Duration::ZERO),
        service_seam_plan(0xACA3),
        None,
    );
    let systems = systems();
    let tickets: Vec<_> = (0..64)
        .map(|k| {
            service
                .submit(request(&systems[k % systems.len()], k))
                .expect("under capacity")
        })
        .collect();
    let mut solved = 0usize;
    let mut exhausted = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(report) => {
                assert!(report.converged());
                solved += 1;
            }
            Err(ServiceError::ShardRestarted { .. }) | Err(ServiceError::Dropped { .. }) => {
                exhausted += 1;
            }
            Err(e) => panic!("unexpected service error under seam chaos: {e}"),
        }
    }
    assert_eq!(solved + exhausted, 64, "zero jobs lost");
    assert!(solved > 0, "chaos at these rates must not kill everything");

    // Every ticket has resolved, so the ledger is final: nothing pending.
    let ledger = service.service_ledger();
    assert!(ledger.injected_total() > 0, "seams must actually fire");
    assert!(
        ledger.accounted(),
        "every category balances: {:?}",
        ledger.tallies
    );
    for cat in FaultCategory::SERVICE {
        let t = ledger.category(cat);
        assert_eq!(
            t.detected + t.recovered + t.exhausted,
            t.injected,
            "{cat:?} out of balance: {t:?}"
        );
    }
    // Engine categories stay zero in the *service* ledger.
    for cat in FaultCategory::ENGINE {
        assert_eq!(ledger.category(cat).injected, 0, "{cat:?} leaked in");
    }
}

/// Same seed, same submission order → identical normalized telemetry
/// streams, even though the run crosses dispatcher crashes and retries.
/// One shard and one worker pin the dispatch interleaving; pause/resume
/// pins the admission/dispatch boundary.
#[test]
fn same_seed_service_chaos_replays_identical_normalized_streams() {
    let run = || {
        let ring = Arc::new(RingRecorder::new(1 << 14));
        let service = Service::<f64>::with_fault_plan(
            acamar(),
            ServiceConfig::default()
                .with_shards(1)
                .with_workers_per_shard(1)
                .with_queue_capacity(32)
                .with_retry_budget(2)
                .with_restart_backoff(Duration::ZERO),
            service_seam_plan(0xF00D),
            Some(Arc::clone(&ring)),
        );
        service.pause();
        let systems = systems();
        let tickets: Vec<_> = (0..24)
            .map(|k| {
                service
                    .submit(request(&systems[k % systems.len()], k))
                    .expect("under capacity")
            })
            .collect();
        service.resume();
        for t in tickets {
            let _ = t.wait();
        }
        drop(service);
        let events: Vec<Event> = ring.drain().into_iter().map(Event::normalized).collect();
        events
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same order: identical normalized streams");
}

/// Breaking a shard spills its affinity traffic to the next shard in the
/// rendezvous ranking, the breaker half-opens after `probe_after`
/// diversions, and a successful probe restores affinity routing.
#[test]
fn broken_shard_fails_over_down_the_ranking_then_probes_and_heals() {
    let shards = 4;
    let probe_after = 3;
    let ring = Arc::new(RingRecorder::new(1 << 12));
    let service = Service::<f64>::with_recorder(
        acamar(),
        ServiceConfig::default()
            .with_shards(shards)
            .with_probe_after(probe_after),
        Arc::clone(&ring),
    );
    let a = Arc::new(generate::poisson2d::<f64>(10, 10));
    let ranking = shard_ranking(&PatternFingerprint::of(&a), shards);
    let home = ranking[0];
    let spill = ranking[1];

    // Healthy: affinity routing, tickets land on the home shard.
    let t = service.submit(request(&a, 0)).expect("admits");
    assert_eq!(t.shard(), home);
    assert!(t.wait().expect("solves").converged());

    service.break_shard(home);
    assert_eq!(service.shard_health(home), ShardHealth::Broken);

    // The first `probe_after - 1` submissions divert to the spill shard.
    for k in 0..probe_after as usize - 1 {
        let t = service.submit(request(&a, k + 1)).expect("admits");
        assert_eq!(t.shard(), spill, "diverted down the ranking");
        assert!(t.wait().expect("solves on the spill shard").converged());
    }
    // The next submission half-opens the breaker and probes home.
    let probe = service.submit(request(&a, 9)).expect("admits");
    assert_eq!(probe.shard(), home, "admitted as the half-open probe");
    assert!(probe.wait().expect("probe solves").converged());
    assert_eq!(service.shard_health(home), ShardHealth::Healthy);

    // Healed: affinity is back.
    let t = service.submit(request(&a, 10)).expect("admits");
    assert_eq!(t.shard(), home);
    assert!(t.wait().expect("solves at home again").converged());

    let counters = ring.counters();
    assert_eq!(
        counters[Counter::Failovers.index()],
        probe_after as u64 - 1,
        "one failover event per diversion"
    );
    assert_eq!(counters[Counter::BreakerProbes.index()], 1);
    assert!(counters[Counter::HealthTransitions.index()] >= 3);
}

/// With every shard broken, admission falls back to the home shard
/// rather than refusing traffic.
#[test]
fn all_shards_broken_still_serves_on_the_home_shard() {
    let service = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(2)
            .with_probe_after(100),
    );
    let a = Arc::new(generate::poisson2d::<f64>(8, 8));
    service.break_shard(0);
    service.break_shard(1);
    let t = service.submit(request(&a, 0)).expect("admits");
    assert!(t.wait().expect("still solves").converged());
}

/// Dropping the service mid-chaos (queued jobs, seams armed) resolves
/// every outstanding ticket: no `Ticket::wait` hang, ever.
#[test]
fn drop_under_seam_chaos_resolves_every_ticket() {
    for seed in [1u64, 2, 3] {
        let service = Service::<f64>::with_fault_plan(
            acamar(),
            ServiceConfig::default()
                .with_shards(2)
                .with_queue_capacity(32)
                .with_retry_budget(1)
                .with_restart_backoff(Duration::ZERO),
            service_seam_plan(seed),
            None,
        );
        service.pause();
        let systems = systems();
        let tickets: Vec<_> = (0..16)
            .map(|k| {
                service
                    .submit(request(&systems[k % systems.len()], k))
                    .expect("under capacity")
            })
            .collect();
        service.resume();
        drop(service);
        for t in tickets {
            // Resolution may be a solution or a typed error; what it may
            // not do is hang.
            let _ = t.wait_timed();
        }
    }
}

/// `wait_timed` on a crashed-then-recovered shard reports a latency and
/// an outcome for every job: the supervisor requeues what was stranded.
#[test]
fn crash_mid_burst_recovers_in_flight_jobs() {
    let service = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(1)
            .with_queue_capacity(32)
            .with_retry_budget(2)
            .with_restart_backoff(Duration::ZERO),
    );
    service.pause();
    let systems = systems();
    let tickets: Vec<_> = (0..12)
        .map(|k| {
            service
                .submit(request(&systems[k % systems.len()], k))
                .expect("under capacity")
        })
        .collect();
    service.crash_shard(0);
    service.resume();
    for t in tickets {
        assert!(
            t.wait().expect("requeued and delivered").converged(),
            "crash fired before any pop: everything must still solve"
        );
    }
    assert!(service.restarts(0) >= 1);
    assert_eq!(service.service_ledger().injected_total(), 0);
}
