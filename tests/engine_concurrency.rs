//! Concurrency regression tests for the batch engine.
//!
//! The engine's contract is that threading is an implementation detail:
//! however many workers run and however jobs interleave, every solution
//! vector is bitwise identical to the single-threaded path, and the plan
//! cache analyzes each distinct sparsity pattern exactly once.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::{generate, CsrMatrix};
use std::sync::Arc;

fn acamar() -> Acamar {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    Acamar::new(FabricSpec::alveo_u55c(), cfg)
}

/// Three matrices with pairwise-distinct sparsity patterns.
fn distinct_systems() -> Vec<Arc<CsrMatrix<f64>>> {
    vec![
        Arc::new(generate::poisson2d::<f64>(12, 12)),
        Arc::new(generate::poisson2d::<f64>(13, 11)),
        Arc::new(generate::poisson1d::<f64>(144)),
    ]
}

/// A job mix cycling through the distinct patterns with varying RHS.
fn job_mix(systems: &[Arc<CsrMatrix<f64>>], jobs: usize) -> Vec<SolveJob<f64>> {
    (0..jobs)
        .map(|k| {
            let a = &systems[k % systems.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + (i + k) as f64 * 1e-3)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect()
}

#[test]
fn four_workers_match_the_single_threaded_path_bitwise() {
    let systems = distinct_systems();
    let jobs = job_mix(&systems, 24);

    let single = Engine::with_workers(acamar(), 1);
    let reference = single.solve_jobs(jobs.clone());

    let concurrent = Engine::with_workers(acamar(), 4);
    assert_eq!(concurrent.workers(), 4);
    let parallel = concurrent.solve_jobs(jobs);

    assert!(reference.all_converged() && parallel.all_converged());
    for (i, (r, p)) in reference.results.iter().zip(&parallel.results).enumerate() {
        let (r, p) = (r.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(
            r.solve.solution, p.solve.solution,
            "job {i}: solution differs between 1 and 4 workers"
        );
        assert_eq!(r.solve.iterations, p.solve.iterations, "job {i}");
        assert_eq!(r.attempts.len(), p.attempts.len(), "job {i}");
    }
    assert_eq!(reference.attempts_by_solver, parallel.attempts_by_solver);
}

#[test]
fn cache_hits_equal_jobs_minus_distinct_patterns() {
    let systems = distinct_systems();
    let distinct = systems.len() as u64;
    let jobs = job_mix(&systems, 24);
    let total = jobs.len() as u64;

    let engine = Engine::with_workers(acamar(), 4);
    let batch = engine.solve_jobs(jobs);

    assert!(batch.all_converged());
    assert_eq!(batch.cache.misses, distinct);
    assert_eq!(batch.cache.hits, total - distinct);
    let counters = engine.counters();
    assert_eq!(counters.jobs_completed, total);
    assert_eq!(counters.cache.entries, distinct as usize);
}

#[test]
fn external_threads_hammering_one_shared_engine_stay_consistent() {
    // Beyond the engine's own pool: 4 OS threads each pushing their own
    // batches into one shared engine, concurrently.
    let systems = distinct_systems();
    let engine = Arc::new(Engine::with_workers(acamar(), 2));
    let reference = Engine::with_workers(acamar(), 1).solve_jobs(job_mix(&systems, 6));

    let threads = 4;
    let reference = &reference;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            let systems = systems.clone();
            scope.spawn(move || {
                let batch = engine.solve_jobs(job_mix(&systems, 6));
                for (i, result) in batch.results.iter().enumerate() {
                    let got = result.as_ref().unwrap();
                    let want = reference.results[i].as_ref().unwrap();
                    assert_eq!(got.solve.solution, want.solve.solution, "job {i}");
                }
            });
        }
    });

    let counters = engine.counters();
    assert_eq!(counters.jobs_completed, (threads * 6) as u64);
    // Even with racing batches, each pattern is analyzed exactly once.
    assert_eq!(counters.cache.misses, systems.len() as u64);
    assert_eq!(
        counters.cache.hits,
        (threads * 6) as u64 - systems.len() as u64
    );
}

#[test]
fn solve_batch_of_eight_rhs_analyzes_exactly_once() {
    let engine = Engine::with_workers(acamar(), 4);
    let a = generate::poisson2d::<f64>(16, 16);
    let rhss: Vec<Vec<f64>> = (0..8)
        .map(|k| {
            (0..256)
                .map(|i| 1.0 + (i * (k + 1)) as f64 * 1e-4)
                .collect()
        })
        .collect();

    let batch = engine.solve_batch(&a, &rhss).unwrap();

    assert_eq!(batch.jobs(), 8);
    assert!(batch.all_converged());
    // The acceptance criterion: one analysis serves the whole batch.
    assert_eq!(batch.cache.misses, 1);
    assert_eq!(batch.cache.hits, 7);
    assert_eq!(engine.counters().cache.entries, 1);
    assert!(batch.cache.plan_build_cycles_saved > 0);

    // And a second batch on the same pattern is all hits.
    let again = engine.solve_batch(&a, &rhss).unwrap();
    assert_eq!(again.cache.misses, 0);
    assert_eq!(again.cache.hits, 8);
}
