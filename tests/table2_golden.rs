//! Golden convergence test: the exact solver-attempt sequence Acamar
//! produces on every Table II dataset analog, pinned.
//!
//! The whole pipeline is deterministic — dataset generation is seeded,
//! the Matrix Structure unit's pick is a pure function of the matrix, and
//! the Solver Modifier's fallback order is fixed — so the sequence of
//! solver attempts per dataset is a stable fingerprint of the decision
//! logic. A diff here means the structure analysis, the convergence
//! policy, or a generator changed behavior; update the table only after
//! confirming the new sequence is intended.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::generate;
use acamar_datasets::{suite, verify};

/// `(dataset id, expected attempt labels in order)` for all 25 rows.
///
/// Under the Table II criteria every analog converges on the structure
/// unit's first pick — the switch machinery is exercised by
/// [`a_divergent_first_pick_switches_to_bicgstab`] below.
const GOLDEN: &[(&str, &[&str])] = &[
    ("2C", &["CG"]),
    ("Of", &["CG"]),
    ("Wi", &["JB"]),
    ("If", &["BiCG-STAB"]),
    ("Wa", &["JB"]),
    ("Fe", &["JB"]),
    ("Eb", &["JB"]),
    ("Qa", &["CG"]),
    ("Th", &["CG"]),
    ("Bc", &["CG"]),
    ("Sd", &["JB"]),
    ("Li", &["JB"]),
    ("Po", &["CG"]),
    ("Cr", &["CG"]),
    ("At", &["JB"]),
    ("Mo", &["JB"]),
    ("Ct", &["JB"]),
    ("Ns", &["BiCG-STAB"]),
    ("Fi", &["JB"]),
    ("G2", &["JB"]),
    ("Ga", &["CG"]),
    ("Si", &["CG"]),
    ("To", &["JB"]),
    ("Ci", &["JB"]),
    ("Tf", &["CG"]),
];

#[test]
fn every_dataset_reproduces_its_golden_attempt_sequence() {
    let datasets = suite();
    assert_eq!(datasets.len(), GOLDEN.len(), "suite size changed");
    let mut diffs = Vec::new();
    for d in &datasets {
        let (_, want) = GOLDEN
            .iter()
            .find(|(id, _)| *id == d.id)
            .unwrap_or_else(|| panic!("dataset {} missing from the golden table", d.id));
        let cfg = AcamarConfig::paper().with_criteria(verify::table2_criteria());
        let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
            .run(&d.matrix(), &d.rhs())
            .unwrap();
        let got: Vec<&str> = rep.attempts.iter().map(|a| a.solver.label()).collect();
        if got != *want {
            diffs.push(format!("{}: expected {:?}, got {:?}", d.id, want, got));
        }
        if !rep.converged() {
            diffs.push(format!("{}: did not converge ({:?})", d.id, rep.attempts));
        }
    }
    assert!(diffs.is_empty(), "golden diffs:\n{}", diffs.join("\n"));
}

#[test]
fn a_divergent_first_pick_switches_to_bicgstab() {
    // Symmetric indefinite, not diagonally dominant: the structure unit
    // picks CG (it can only check symmetry), CG breaks down on the
    // indefinite spectrum, and the Solver Modifier rescues the run with
    // BiCG-STAB — the exact two-step sequence is pinned.
    let a = generate::spread_spectrum_blocks::<f32>(120, 0.65, 10.0, true, 7);
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
        .run(&a, &vec![1.0_f32; 120])
        .unwrap();
    let got: Vec<&str> = rep.attempts.iter().map(|x| x.solver.label()).collect();
    assert_eq!(got, ["CG", "BiCG-STAB"]);
    assert!(rep.converged());
    assert!(!rep.attempts[0].outcome.converged());
    assert_eq!(rep.solver_switches(), 1);
}
