//! Observability integration suite (`--features telemetry`).
//!
//! Proves the telemetry layer's two core contracts end to end:
//!
//! 1. **Neutrality** — telemetry is purely observational. Solutions,
//!    iteration counts, and modeled cycle charges are bitwise identical
//!    whether no recorder, a `NullRecorder`, or a live `RingRecorder` is
//!    installed.
//! 2. **Fidelity** — the exported trace reconstructs the engine's own
//!    accounting: per-set reconfiguration counts match
//!    `FabricRunStats::spmv_reconfig_events`, cache counters match
//!    `CacheStats`, and chaos replays produce identical (normalized)
//!    event streams.
#![cfg(feature = "telemetry")]

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, ResilienceConfig, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::faultline::{FaultInjector, FaultPlan};
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::generate::{self, RowDistribution};
use acamar::sparse::CsrMatrix;
use acamar::telemetry::{timeline, Counter, Event, EventKind, NullRecorder, RingRecorder};
use std::sync::Arc;

fn engine(workers: usize) -> Engine {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2500));
    Engine::with_workers(Acamar::new(FabricSpec::alveo_u55c(), cfg), workers)
}

/// A matrix whose bimodal row lengths force the MSID schedule to
/// alternate unroll factors, so solves actually reconfigure.
fn mixed_matrix(n: usize, seed: u64) -> CsrMatrix<f64> {
    generate::diagonally_dominant::<f64>(
        n,
        RowDistribution::Bimodal {
            low: 3,
            high: 24,
            high_fraction: 0.4,
        },
        1.6,
        seed,
    )
}

fn jobs_over(a: &Arc<CsrMatrix<f64>>, count: usize) -> Vec<SolveJob<f64>> {
    (0..count)
        .map(|k| {
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 3 * k) % 7) as f64 * 0.125)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect()
}

#[test]
fn null_recorder_is_bitwise_neutral() {
    let a = Arc::new(mixed_matrix(256, 33));
    let plain = engine(2).solve_jobs(jobs_over(&a, 6));
    let nulled = engine(2)
        .with_recorder(Arc::new(NullRecorder))
        .with_residual_stride(1)
        .solve_jobs(jobs_over(&a, 6));
    let ringed = engine(2)
        .with_recorder(Arc::new(RingRecorder::new(1 << 14)))
        .with_residual_stride(1)
        .solve_jobs(jobs_over(&a, 6));
    for (p, other) in std::iter::zip(&plain.results, &nulled.results)
        .chain(std::iter::zip(&plain.results, &ringed.results))
    {
        let (p, o) = (p.as_ref().unwrap(), other.as_ref().unwrap());
        assert_eq!(p.solve.solution, o.solve.solution, "bitwise solutions");
        assert_eq!(p.solve.iterations, o.solve.iterations);
        assert_eq!(p.stats.cycles.total(), o.stats.cycles.total());
        assert_eq!(p.stats.useful_flops, o.stats.useful_flops);
    }
}

#[test]
fn trace_reconfig_counts_match_fabric_stats() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let e = engine(1).with_recorder(rec.clone());
    let a = Arc::new(mixed_matrix(384, 7));
    let batch = e.solve_jobs(jobs_over(&a, 4));
    assert!(batch.all_converged());

    let events = rec.drain();
    assert_eq!(rec.dropped(), 0, "ring sized for the whole trace");
    let counts = timeline::reconfig_counts(&events, None);
    assert_eq!(
        counts.spmv, batch.stats.spmv_reconfig_events as u64,
        "every fabric reconfiguration appears in the trace exactly once"
    );
    assert_eq!(counts.aborts, batch.stats.reconfig_aborts as u64);

    // The counters snapshot agrees with the event stream and the stats.
    let counters = rec.counters();
    assert_eq!(counters[Counter::SpmvReconfigs.index()], counts.spmv);
    assert_eq!(
        counters[Counter::JobsCompleted.index()],
        batch.jobs() as u64
    );
    assert_eq!(counters[Counter::CacheHits.index()], batch.cache.hits);
    assert_eq!(counters[Counter::CacheMisses.index()], batch.cache.misses);
    assert!(counters[Counter::AnalysisNanos.index()] > 0);
    assert_eq!(
        counters[Counter::AnalysisNanos.index()],
        batch.cache.analysis_nanos,
        "bench and Prometheus export share one analysis-time source"
    );
}

#[test]
fn every_job_has_balanced_spans_and_lifecycle_events() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let e = engine(3).with_recorder(rec.clone());
    let a = Arc::new(mixed_matrix(200, 11));
    let batch = e.solve_jobs(jobs_over(&a, 5));
    assert!(batch.all_converged());

    let events = rec.drain();
    for job in 0..5u64 {
        let of_job: Vec<&Event> = events.iter().filter(|e| e.job == job).collect();
        let starts = of_job
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobStart { .. }))
            .count();
        let ends = of_job
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobEnd { .. }))
            .count();
        assert_eq!((starts, ends), (1, 1), "job {job} lifecycle");
        let enters = of_job
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanEnter { .. }))
            .count();
        let exits = of_job
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanExit { .. }))
            .count();
        assert_eq!(enters, exits, "job {job} spans balance");
        assert!(
            of_job
                .iter()
                .any(|e| matches!(e.kind, EventKind::AttemptStart { rung: 0, .. })),
            "job {job} records its primary attempt"
        );
    }
    // Exactly one analysis ran; the other four jobs hit.
    let hits = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CacheHit))
        .count();
    let misses = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CacheMiss { .. }))
        .count();
    assert_eq!((hits, misses), (4, 1));
}

#[test]
fn residual_stream_is_stride_sampled() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let e = engine(1).with_recorder(rec.clone()).with_residual_stride(4);
    let a = Arc::new(mixed_matrix(256, 5));
    let batch = e.solve_jobs(jobs_over(&a, 1));
    assert!(batch.all_converged());
    let iterations = batch.results[0].as_ref().unwrap().solve.iterations;

    let events = rec.drain();
    let residuals = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Residual { .. }))
        .count();
    assert!(residuals > 0, "stride 4 samples the stream");
    assert!(
        residuals <= iterations / 4 + 2,
        "sampling respects the stride ({residuals} samples over {iterations} iterations)"
    );
    assert_eq!(
        rec.counters()[Counter::ResidualSamples.index()],
        residuals as u64
    );
}

#[test]
fn chaos_replay_produces_identical_normalized_streams() {
    let capture = |seed: u64| -> (Vec<Event>, usize) {
        let rec = Arc::new(RingRecorder::new(1 << 16));
        let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(seed, 0.3)));
        // One worker: a deterministic job order makes the full stream
        // (not just its per-job projections) comparable across runs.
        let e = engine(1)
            .with_recorder(rec.clone())
            .with_resilience(ResilienceConfig::hardened())
            .with_fault_injection(injector);
        let a = Arc::new(mixed_matrix(160, 13));
        let batch = e.solve_jobs(jobs_over(&a, 8));
        let events: Vec<Event> = rec.drain().into_iter().map(Event::normalized).collect();
        (events, batch.converged)
    };
    let (first, converged_first) = capture(0xACA3);
    let (second, converged_second) = capture(0xACA3);
    assert_eq!(converged_first, converged_second);
    assert_eq!(
        first, second,
        "same seed, same jobs: identical normalized event streams"
    );
    // A different seed perturbs the stream (sanity check that the
    // comparison above is not vacuous).
    let (third, _) = capture(0xBEEF);
    assert_ne!(first, third);
}

#[test]
fn fault_join_mirrors_the_robustness_ledger() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(21, 0.4)));
    let e = engine(2)
        .with_recorder(rec.clone())
        .with_resilience(ResilienceConfig::hardened())
        .with_fault_injection(injector);
    let a = Arc::new(mixed_matrix(160, 17));
    let batch = e.solve_jobs(jobs_over(&a, 12));
    let r = &batch.robustness;
    assert!(r.injected_total() > 0, "the plan actually fired");

    let counters = rec.counters();
    assert_eq!(
        counters[Counter::FaultsInjected.index()],
        r.injected_total()
    );
    let detected: u64 = r.tallies.iter().map(|t| t.detected).sum();
    let recovered: u64 = r.tallies.iter().map(|t| t.recovered).sum();
    let exhausted: u64 = r.tallies.iter().map(|t| t.exhausted).sum();
    assert_eq!(counters[Counter::FaultsDetected.index()], detected);
    assert_eq!(counters[Counter::FaultsRecovered.index()], recovered);
    assert_eq!(counters[Counter::FaultsExhausted.index()], exhausted);

    let events = rec.drain();
    let injected_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
        .count() as u64;
    let outcome_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultOutcome { .. }))
        .count() as u64;
    assert_eq!(injected_events, r.injected_total());
    assert_eq!(outcome_events, r.injected_total());
}

#[test]
fn prometheus_snapshot_agrees_with_the_batch_report() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let e = engine(2).with_recorder(rec.clone());
    let a = Arc::new(mixed_matrix(200, 29));
    let batch = e.solve_jobs(jobs_over(&a, 6));
    let text = batch.prometheus_text();
    for needle in [
        format!("acamar_jobs_completed_total {}", batch.jobs()),
        format!("acamar_plan_cache_hits_total {}", batch.cache.hits),
        format!("acamar_plan_cache_misses_total {}", batch.cache.misses),
        format!(
            "acamar_spmv_reconfigs_total {}",
            batch.stats.spmv_reconfig_events
        ),
        format!("acamar_jobs_converged_total {}", batch.converged),
    ] {
        assert!(text.contains(&needle), "missing `{needle}` in:\n{text}");
    }
    assert!(text.contains("# TYPE acamar_jobs_completed_total counter"));
    assert!(text.contains("# TYPE acamar_batch_wall_seconds gauge"));
}

#[test]
fn timeline_renders_the_reconfiguration_history() {
    let rec = Arc::new(RingRecorder::new(1 << 16));
    let e = engine(1).with_recorder(rec.clone());
    let a = Arc::new(mixed_matrix(384, 7));
    let batch = e.solve_jobs(jobs_over(&a, 2));
    assert!(batch.all_converged());

    let events = rec.drain();
    let rendered = timeline::render_job(&events, 0, 72);
    assert!(rendered.contains("job 0:"), "header present:\n{rendered}");
    assert!(
        rendered.contains("iterations"),
        "iteration axis present:\n{rendered}"
    );
    let summary = timeline::render_summary(&events);
    assert!(summary.contains("job 0"), "{summary}");
    assert!(summary.contains("job 1"), "{summary}");
}
