//! `acamar-cli`: command-line front end for the Acamar reproduction.
//!
//! ```text
//! acamar-cli analyze  <file.mtx>
//! acamar-cli solve    <file.mtx> [--solver auto|jb|cg|bicgstab|pcg|gmres]
//!                                [--tol 1e-5] [--max-iters 10000]
//!                                [--static-urb N]
//! acamar-cli generate <kind> [dims...] --out <file.mtx> [--seed S]
//!             kinds: poisson2d NX NY | poisson3d NX NY NZ |
//!                    dominant N | spd N | convection NX NY PECLET
//! acamar-cli datasets
//! acamar-cli dataset  <ID>
//! ```

use acamar::core::{Acamar, AcamarConfig, MatrixStructureUnit};
use acamar::datasets;
use acamar::prelude::*;
use acamar::solvers::solve_with;
use acamar::sparse::generate::RowDistribution;
use acamar::sparse::io::{read_matrix_market, write_matrix_market};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `acamar-cli help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{}", usage());
            Ok(())
        }
        Some("analyze") => analyze(args.get(1).ok_or("analyze needs a .mtx path")?),
        Some("solve") => solve(&args[1..]),
        Some("generate") => generate_cmd(&args[1..]),
        Some("datasets") => {
            list_datasets();
            Ok(())
        }
        Some("dataset") => dataset_cmd(args.get(1).ok_or("dataset needs an ID (e.g. 2C)")?),
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

fn usage() -> String {
    "acamar-cli — dynamically reconfigurable sparse-solver accelerator (behavioral model)\n\
     \n\
     commands:\n\
       analyze  <file.mtx>                     structural report (Matrix Structure unit)\n\
       solve    <file.mtx> [options]           solve Ax=b (b = ones) on the fabric model\n\
         --solver auto|jb|cg|bicgstab|pcg|bicg|cr|gs|sor|gmres (default auto)\n\
         --tol <t>                                convergence tolerance (default 1e-5)\n\
         --max-iters <n>                          iteration budget (default 10000)\n\
         --static-urb <u>                         run the static baseline at SpMV_URB=u\n\
       generate <kind> [dims...] --out <file>  write a synthetic matrix\n\
         kinds: poisson2d NX NY | poisson3d NX NY NZ | dominant N | spd N |\n\
                convection NX NY PECLET        (--seed <s> for randomized kinds)\n\
       datasets                                list the Table II dataset suite\n\
       dataset <ID>                            run one Table II row (e.g. 2C)\n\
       help                                    this text\n"
        .to_string()
}

/// Parsed command line: positional arguments and `--flag value` pairs.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Parses `--flag value` style options, returning (positional, flags).
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let v = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_string(), v.clone()));
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn load(path: &str) -> Result<CsrMatrix<f32>, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_matrix_market::<f32, _>(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn analyze(path: &str) -> Result<(), String> {
    let a = load(path)?;
    let d = MatrixStructureUnit::new().analyze(&a);
    println!(
        "{path}: {} x {}, {} non-zeros ({:.4}% dense)",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        100.0 * a.density()
    );
    println!("  symmetric (CSR==CSC):          {}", d.report.symmetric);
    println!(
        "  pattern symmetric:             {}",
        d.report.pattern_symmetric
    );
    println!(
        "  strictly diagonally dominant:  {}",
        d.report.strictly_diagonally_dominant
    );
    println!(
        "  weakly diagonally dominant:    {}",
        d.report.weakly_diagonally_dominant
    );
    println!(
        "  nonzero diagonal:              {}",
        d.report.nonzero_diagonal
    );
    println!(
        "  mixed-sign diagonal:           {}",
        d.report.mixed_sign_diagonal
    );
    println!(
        "  gershgorin definiteness:       {}",
        d.report.gershgorin_definiteness
    );
    println!("  half bandwidth:                {}", d.report.bandwidth);
    println!("  recommended solver:            {}", d.solver);
    Ok(())
}

fn parse_solver(s: &str) -> Result<Option<SolverKind>, String> {
    Ok(Some(match s.to_ascii_lowercase().as_str() {
        "auto" => return Ok(None),
        "jb" | "jacobi" => SolverKind::Jacobi,
        "cg" => SolverKind::ConjugateGradient,
        "bicgstab" | "bicg-stab" => SolverKind::BiCgStab,
        "pcg" => SolverKind::PreconditionedCg,
        "bicg" => SolverKind::BiCg,
        "cr" => SolverKind::ConjugateResidual,
        "gs" | "gauss-seidel" => SolverKind::GaussSeidel,
        "sor" => SolverKind::Sor,
        "gmres" => SolverKind::Gmres,
        other => return Err(format!("unknown solver {other:?}")),
    }))
}

fn solve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("solve needs a .mtx path")?;
    let a = load(path)?;
    if a.nrows() != a.ncols() {
        return Err(format!(
            "matrix is {}x{}, need square",
            a.nrows(),
            a.ncols()
        ));
    }
    let b = vec![1.0_f32; a.nrows()];
    let tol: f64 = flag(&flags, "tol")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --tol: {e}"))?
        .unwrap_or(1e-5);
    let max_iters: usize = flag(&flags, "max-iters")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --max-iters: {e}"))?
        .unwrap_or(10_000);
    let criteria = ConvergenceCriteria::paper()
        .with_tolerance(tol)
        .with_max_iterations(max_iters);

    if let Some(urb) = flag(&flags, "static-urb") {
        let urb: usize = urb.parse().map_err(|e| format!("bad --static-urb: {e}"))?;
        let solver = parse_solver(flag(&flags, "solver").unwrap_or("cg"))?
            .ok_or("--static-urb needs an explicit --solver")?;
        let run = StaticAccelerator::new(FabricSpec::alveo_u55c(), solver, urb)
            .run(&a, &b, &criteria)
            .map_err(|e| e.to_string())?;
        println!(
            "static {solver} @ URB={urb}: {} in {} iterations, {:.3} ms, \
             {:.1}% SpMV underutilization",
            run.solve.outcome,
            run.solve.iterations,
            run.compute_seconds() * 1e3,
            100.0 * run.stats.spmv.underutilization()
        );
        return Ok(());
    }

    match parse_solver(flag(&flags, "solver").unwrap_or("auto"))? {
        None => {
            let cfg = AcamarConfig::paper().with_criteria(criteria);
            let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
                .run(&a, &b)
                .map_err(|e| e.to_string())?;
            for (i, at) in rep.attempts.iter().enumerate() {
                println!(
                    "attempt {}: {} -> {} ({} iterations)",
                    i + 1,
                    at.solver,
                    at.outcome,
                    at.iterations
                );
            }
            println!(
                "acamar: {} via {}; {:.3} ms compute + {:.3} ms reconfig; \
                 {:.1}% SpMV underutilization; {:.1}% of peak throughput",
                rep.solve.outcome,
                rep.final_solver(),
                rep.compute_seconds() * 1e3,
                (rep.total_seconds() - rep.compute_seconds()) * 1e3,
                100.0 * rep.stats.spmv.underutilization(),
                100.0 * rep.stats.achieved_throughput()
            );
        }
        Some(kind) => {
            let mut k = SoftwareKernels::new();
            let rep =
                solve_with(kind, &a, &b, None, &criteria, &mut k).map_err(|e| e.to_string())?;
            println!(
                "{kind}: {} in {} iterations (final residual {:.2e}, {} SpMV calls)",
                rep.outcome,
                rep.iterations,
                rep.final_residual(),
                rep.counts.spmv_calls
            );
        }
    }
    Ok(())
}

fn generate_cmd(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let out = flag(&flags, "out").ok_or("generate needs --out <file.mtx>")?;
    let seed: u64 = flag(&flags, "seed")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --seed: {e}"))?
        .unwrap_or(42);
    let dim = |i: usize| -> Result<usize, String> {
        pos.get(i)
            .ok_or_else(|| format!("missing dimension argument {i}"))?
            .parse()
            .map_err(|e| format!("bad dimension: {e}"))
    };
    let a: CsrMatrix<f32> = match pos.first().map(String::as_str) {
        Some("poisson2d") => generate::poisson2d(dim(1)?, dim(2)?),
        Some("poisson3d") => generate::poisson3d(dim(1)?, dim(2)?, dim(3)?),
        Some("dominant") => generate::diagonally_dominant(
            dim(1)?,
            RowDistribution::Uniform { min: 2, max: 9 },
            1.5,
            seed,
        ),
        Some("spd") => generate::spd_from_pattern(
            dim(1)?,
            RowDistribution::Uniform { min: 2, max: 9 },
            0.3,
            seed,
        ),
        Some("convection") => {
            let p: f64 = pos
                .get(3)
                .ok_or("convection needs NX NY PECLET")?
                .parse()
                .map_err(|e| format!("bad peclet: {e}"))?;
            generate::convection_diffusion_2d(dim(1)?, dim(2)?, p)
        }
        Some(k) => return Err(format!("unknown kind {k:?}")),
        None => return Err("generate needs a kind".into()),
    };
    let f = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_matrix_market(&a, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} x {}, {} non-zeros",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    Ok(())
}

fn list_datasets() {
    println!(
        "{:<4} {:<18} {:>9} {:>7}  expected (JB CG BiCG)",
        "ID", "name", "paper dim", "dim"
    );
    for d in datasets::suite() {
        println!(
            "{:<4} {:<18} {:>9} {:>7}  {}",
            d.id,
            d.name,
            d.paper_dim,
            d.matrix_rows(),
            d.expected.marks()
        );
    }
}

fn dataset_cmd(id: &str) -> Result<(), String> {
    let d = datasets::by_id(id).ok_or_else(|| format!("no dataset with id {id:?}"))?;
    println!("{} ({}), analog dim {}", d.id, d.name, d.matrix_rows());
    let triple = datasets::verify::measure_triple(&d);
    println!(
        "expected: {}   measured: {}",
        d.expected.marks(),
        triple.measured.marks()
    );
    let cfg = AcamarConfig::paper().with_criteria(datasets::verify::table2_criteria());
    let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
        .run(&d.matrix(), &d.rhs())
        .map_err(|e| e.to_string())?;
    println!(
        "acamar: {} via {} ({} switches)",
        rep.solve.outcome,
        rep.final_solver(),
        rep.solver_switches()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_splits_positionals_and_flags() {
        let args: Vec<String> = ["a.mtx", "--solver", "cg", "--tol", "1e-6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["a.mtx"]);
        assert_eq!(flag(&flags, "solver"), Some("cg"));
        assert_eq!(flag(&flags, "tol"), Some("1e-6"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn parse_flags_rejects_dangling_flag() {
        let args: Vec<String> = vec!["--solver".into()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_solver_accepts_all_names() {
        assert_eq!(parse_solver("auto").unwrap(), None);
        assert_eq!(parse_solver("JB").unwrap(), Some(SolverKind::Jacobi));
        assert_eq!(
            parse_solver("bicg-stab").unwrap(),
            Some(SolverKind::BiCgStab)
        );
        assert_eq!(
            parse_solver("pcg").unwrap(),
            Some(SolverKind::PreconditionedCg)
        );
        assert!(parse_solver("nope").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_ok()); // help
    }

    #[test]
    fn generate_then_solve_round_trip() {
        let dir = std::env::temp_dir().join("acamar_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p2d.mtx");
        let path_s = path.to_str().unwrap().to_string();
        run(&[
            "generate".into(),
            "poisson2d".into(),
            "8".into(),
            "8".into(),
            "--out".into(),
            path_s.clone(),
        ])
        .unwrap();
        run(&["analyze".into(), path_s.clone()]).unwrap();
        run(&["solve".into(), path_s.clone()]).unwrap();
        run(&[
            "solve".into(),
            path_s.clone(),
            "--solver".into(),
            "cg".into(),
        ])
        .unwrap();
        run(&[
            "solve".into(),
            path_s,
            "--solver".into(),
            "jb".into(),
            "--static-urb".into(),
            "8".into(),
        ])
        .unwrap();
    }

    #[test]
    fn dataset_commands_work() {
        list_datasets();
        assert!(dataset_cmd("Wa").is_ok());
        assert!(dataset_cmd("zz").is_err());
    }
}
