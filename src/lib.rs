//! # acamar
//!
//! A behavioral, end-to-end reproduction of **Acamar** (MICRO 2024): a
//! dynamically reconfigurable scientific-computing accelerator for robust
//! convergence and minimal resource underutilization.
//!
//! Acamar solves sparse linear systems `A x = b` on an FPGA and, unlike
//! static accelerators, *reconfigures itself at runtime* on two levels:
//!
//! 1. **Solver level** — a Matrix Structure unit inspects the coefficient
//!    matrix (diagonal dominance, symmetry) to pick among Jacobi, CG, and
//!    BiCG-STAB; a Solver Modifier swaps solvers when divergence is
//!    detected, so *some* solver always converges (paper Table II).
//! 2. **SpMV level** — a Fine-Grained Reconfiguration unit adapts the
//!    SpMV engine's unroll factor to the NNZ/row of each set of rows,
//!    minimizing wasted MAC slots (paper Eq. 5), with a Multi-Stage
//!    Iterative Decision chain (Algorithm 4) keeping the partial-
//!    reconfiguration rate low.
//!
//! This crate is a facade over the workspace:
//!
//! * [`sparse`] — CSR/CSC/COO matrices, Matrix Market I/O, structural
//!   analysis, synthetic dataset generators;
//! * [`solvers`] — Jacobi, CG, BiCG-STAB (+ Gauss-Seidel, SOR, GMRES)
//!   with the paper's convergence policy;
//! * [`fabric`] — the Alveo U55C-class behavioral fabric model (cycles,
//!   resources, area, DFX reconfiguration) and the static baseline;
//! * [`gpu`] — the GTX 1650 Super-class cuSPARSE SpMV baseline model;
//! * [`datasets`] — synthetic analogs of the paper's 25 SuiteSparse
//!   datasets (Table II);
//! * [`core`] — the Acamar accelerator itself;
//! * [`engine`] — a concurrent batch-solve service that fingerprints
//!   sparsity patterns and caches structure/plan decisions across jobs,
//!   with panic isolation, per-job deadlines, and a rescue ladder;
//! * [`service`] — the long-running serving front-end over the engine:
//!   bounded admission with typed backpressure, per-tenant priority +
//!   deadline scheduling, fingerprint-affinity engine shards, and an
//!   HTTP scrape endpoint for the Prometheus snapshot and ring trace;
//! * [`faultline`] — a seeded deterministic fault-injection harness for
//!   exercising every recovery path (see the fault-model section of
//!   DESIGN.md and the `fault-injection` cargo feature, which gates the
//!   chaos test suite and example);
//! * [`telemetry`] — zero-overhead-when-disabled structured observability:
//!   per-job spans, monotonic counters, a lock-free event ring, JSON-lines
//!   and Prometheus exporters, and the Fig. 13-style reconfiguration
//!   timeline renderer (the `telemetry` cargo feature gates the
//!   observability test suite; the layer itself is always available).
//!
//! ## Quickstart
//!
//! ```
//! use acamar::core::{Acamar, AcamarConfig};
//! use acamar::fabric::FabricSpec;
//! use acamar::sparse::generate;
//!
//! // Discretize a PDE (2D Poisson) and solve it on the accelerator model.
//! let a = generate::poisson2d::<f32>(32, 32);
//! let b = vec![1.0; a.nrows()];
//!
//! let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
//! let report = acamar.run(&a, &b)?;
//!
//! assert!(report.converged());
//! println!(
//!     "{} iterations of {}, SpMV underutilization {:.1}%",
//!     report.solve.iterations,
//!     report.final_solver(),
//!     100.0 * report.stats.spmv.underutilization(),
//! );
//! # Ok::<(), acamar::sparse::SparseError>(())
//! ```
//!
//! The experiment harnesses that regenerate every table and figure of the
//! paper live in the `acamar-bench` crate (`cargo bench`). See DESIGN.md
//! for the system inventory and EXPERIMENTS.md for paper-vs-measured
//! results.

#![warn(missing_docs)]

pub use acamar_core as core;
pub use acamar_datasets as datasets;
pub use acamar_engine as engine;
pub use acamar_fabric as fabric;
pub use acamar_faultline as faultline;
pub use acamar_gpu as gpu;
pub use acamar_service as service;
pub use acamar_solvers as solvers;
pub use acamar_sparse as sparse;
pub use acamar_telemetry as telemetry;

/// Convenience prelude importing the most common types.
///
/// ```
/// use acamar::prelude::*;
///
/// let a = generate::poisson1d::<f32>(64);
/// let report = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
///     .run(&a, &vec![1.0; 64])
///     .unwrap();
/// assert!(report.converged());
/// ```
pub mod prelude {
    pub use acamar_core::{
        Acamar, AcamarConfig, AcamarRunReport, AnalysisArtifacts, RescuePolicy, RunOptions,
    };
    pub use acamar_engine::{
        BatchReport, Engine, ResilienceConfig, RobustnessReport, SolveError, SolveJob,
    };
    pub use acamar_fabric::{FabricSpec, StaticAccelerator, UnrollSchedule};
    pub use acamar_faultline::{FaultCategory, FaultInjector, FaultPlan};
    pub use acamar_gpu::{model_csr_spmv, GpuSpec};
    pub use acamar_service::{
        AdmissionError, Priority, RoutingPolicy, ScrapeServer, Service, ServiceConfig,
        ServiceError, ServiceRequest, Ticket,
    };
    pub use acamar_solvers::{
        ConvergenceCriteria, Outcome, SoftwareKernels, SolveReport, SolverKind,
    };
    pub use acamar_sparse::{generate, CooMatrix, CsrMatrix, Scalar, SparseError};
    pub use acamar_telemetry::{NullRecorder, Recorder, RingRecorder, TelemetrySink};
}
